package service

import (
	"sync"
	"time"

	"icpic3/internal/det"
)

// Per-engine circuit breakers (DESIGN.md §14).
//
// The retry machinery of supervise.go treats every panic or stall as an
// isolated accident: guard, retry, degrade, move on.  Under load that
// is the wrong shape — when an engine is systematically wedging (a bad
// deploy, a pathological model family), every new job still pays one
// full StallTimeout on the broken engine before degrading.  The breaker
// aggregates those verdicts: threshold consecutive panic/stall failures
// of one engine open its breaker, and while it is open new jobs route
// straight to the degraded engine (per Config.Degrade) without paying
// for the doomed first attempt.  After the cool-down one job is let
// through as a half-open probe; its success closes the breaker, its
// failure re-opens it for another cool-down.  Decisive and ordinary
// Unknown results count as successes — only supervision kills (panic,
// stall) trip the breaker, mirroring what the retry loop retries.

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// engineBreaker is the breaker of one engine name.
type engineBreaker struct {
	state    breakerState
	fails    int       // consecutive panic/stall failures while closed
	openedAt time.Time // when the breaker last opened
}

// breaker tracks one engineBreaker per engine name.
type breaker struct {
	mu        sync.Mutex
	threshold int                       // consecutive failures that open (<= 0: disabled)
	cooldown  time.Duration             // open duration before a half-open probe
	engines   map[string]*engineBreaker // guarded-by: mu

	now func() time.Time // test clock (nil = time.Now)
}

func newBreaker(cfg Config) *breaker {
	return &breaker{
		threshold: cfg.BreakerThreshold,
		cooldown:  cfg.BreakerCooldown,
		engines:   make(map[string]*engineBreaker),
	}
}

func (b *breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

func (b *breaker) forEngineLocked(name string) *engineBreaker {
	eb := b.engines[name]
	if eb == nil {
		eb = &engineBreaker{}
		b.engines[name] = eb
	}
	return eb
}

// admit decides whether a new job may start on the named engine.
// ok = true, probe = false: breaker closed, run normally.
// ok = true, probe = true: the caller holds the single half-open probe
// slot and must report the outcome via record(..., probe = true).
// ok = false: breaker open (or a probe is already in flight); the
// caller should route to the degraded engine.
func (b *breaker) admit(name string) (ok, probe bool) {
	if b == nil || b.threshold <= 0 {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	eb := b.forEngineLocked(name)
	switch eb.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if b.clock().Sub(eb.openedAt) >= b.cooldown {
			eb.state = breakerHalfOpen
			return true, true
		}
		return false, false
	default: // half-open: a probe is already in flight
		return false, false
	}
}

// record feeds one attempt outcome back.  failed means the attempt was
// killed by supervision (panic or stall).  It returns the transition
// the outcome caused, or "" when the state did not change.
func (b *breaker) record(name string, failed, probe bool) (transition string) {
	if b == nil || b.threshold <= 0 {
		return ""
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	eb := b.forEngineLocked(name)
	if probe || eb.state == breakerHalfOpen {
		if failed {
			eb.state = breakerOpen
			eb.openedAt = b.clock()
			return "half-open -> open"
		}
		eb.state = breakerClosed
		eb.fails = 0
		return "half-open -> closed"
	}
	if eb.state != breakerClosed {
		return "" // outcome of a pre-open attempt arriving late
	}
	if !failed {
		eb.fails = 0
		return ""
	}
	eb.fails++
	if eb.fails < b.threshold {
		return ""
	}
	eb.state = breakerOpen
	eb.openedAt = b.clock()
	eb.fails = 0
	return "closed -> open"
}

// release returns an unreported half-open probe slot (the probe job was
// cancelled mid-flight, proving nothing): the breaker re-opens with its
// cool-down already spent, so the next job probes again immediately.
func (b *breaker) release(name string) {
	if b == nil || b.threshold <= 0 || name == "" {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	eb := b.forEngineLocked(name)
	if eb.state == breakerHalfOpen {
		eb.state = breakerOpen
		eb.openedAt = b.clock().Add(-b.cooldown)
	}
}

// snapshot returns every engine's open-ness (1 = open or half-open) in
// deterministic order, for the /metrics gauges.
func (b *breaker) snapshot() (engines []string, open []int64) {
	if b == nil {
		return nil, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, name := range det.SortedKeys(b.engines) {
		engines = append(engines, name)
		v := int64(0)
		if b.engines[name].state != breakerClosed {
			v = 1
		}
		open = append(open, v)
	}
	return engines, open
}
