// Package service is the long-running verification service behind the
// icpserve binary.  It wraps the batch engines (ic3icp, bmc, kind,
// portfolio) in a job queue with a fixed worker pool, a fill-once LRU
// result cache keyed by the canonical hash of (normalized system,
// engine, options), cooperative cancellation threaded through
// engine.Budget, and a metrics layer.
//
// Lifecycle of a submission:
//
//	Submit -> cache hit  -> done immediately (cache_hits)
//	       -> coalesced  -> attached to an identical in-flight job
//	       -> queued     -> picked up by a worker -> running -> done
//
// Identical concurrent submissions are single-flighted: the first one
// (the leader) occupies a worker; followers wait for its result.  If a
// leader is cancelled, the oldest follower is promoted and re-enqueued,
// so no job is lost and the cache is filled at most once per key.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"icpic3/internal/bmc"
	"icpic3/internal/engine"
	"icpic3/internal/ic3icp"
	"icpic3/internal/icp"
	"icpic3/internal/kind"
	"icpic3/internal/portfolio"
	"icpic3/internal/reuse"
	"icpic3/internal/ts"
)

// Errors returned by Submit and Cancel.
var (
	ErrClosed   = errors.New("service: shutting down")
	ErrBusy     = errors.New("service: job queue full")
	ErrQuota    = errors.New("service: tenant quota exceeded")
	ErrShed     = errors.New("service: shed under overload")
	ErrNotFound = errors.New("service: no such job")
	ErrFinished = errors.New("service: job already finished")
)

// RetryAfter extracts the retry hint attached to an ErrBusy/ErrQuota/
// ErrShed rejection (0 when the error carries none).
func RetryAfter(err error) time.Duration {
	var r *rejectError
	if errors.As(err, &r) {
		return r.retryAfter
	}
	return 0
}

// rejectError wraps an admission rejection with its retry hint, so the
// HTTP layer can render a Retry-After header without re-deriving it.
type rejectError struct {
	err        error
	retryAfter time.Duration
}

func (e *rejectError) Error() string { return e.err.Error() }
func (e *rejectError) Unwrap() error { return e.err }

// Config tunes the service.  The zero value is usable.
type Config struct {
	// Workers is the worker-pool size (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs
	// (0 = 256); past it Submit returns ErrBusy.
	QueueDepth int
	// CacheSize bounds the result cache in entries (0 = 256).
	CacheSize int
	// DefaultTimeout is the per-job budget when a request names none
	// (0 = 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-job budget a request may ask for (0 = 5m).
	MaxTimeout time.Duration
	// StallTimeout is how long a running engine may go without publishing
	// a progress heartbeat before the watchdog kills the attempt
	// (0 = 2m, negative = watchdog disabled).  Distinct from the job
	// timeout: a stalled run is wedged inside one solver call, not slow.
	StallTimeout time.Duration
	// MaxRetries is how many times a panicked or stalled attempt is
	// retried, degrading the engine per Degrade (0 = 1, negative = no
	// retries).  Decisive and ordinary-Unknown results never retry.
	MaxRetries int
	// RetryBackoff is the sleep before the first retry, doubled per
	// attempt (0 = 100ms).
	RetryBackoff time.Duration
	// Degrade maps an engine to the one a retry falls back to (nil =
	// {ic3: portfolio, portfolio: bmc}).  An engine with no entry retries
	// on itself.
	Degrade map[string]string
	// Reuse enables the certificate-reuse subsystem (internal/reuse):
	// certified Safe results are stored, and new jobs whose system is
	// structurally close to a prior proof start seeded from it (IC3 frame
	// clauses, k-induction depth).  Verdicts never depend on it — every
	// reused clause is re-checked against the new system first.
	Reuse bool
	// CacheDir persists reuse certificates on disk so the store is warm
	// across restarts ("" = memory only).  Ignored unless Reuse is set.
	CacheDir string
	// ReuseMaxDist is the structural-diff distance threshold under which
	// a prior certificate is considered close enough to seed from
	// (0 = 0.25; see reuse.Diff).
	ReuseMaxDist float64
	// ReuseStoreSize bounds the certificate store in entries (0 = 512).
	ReuseStoreSize int
	// TenantQuota is the default per-tenant admission quota (zero =
	// unlimited): a token bucket of Burst tokens refilled at Rate
	// jobs/sec, charged only by submissions that consume a worker (cache
	// hits and coalesced followers ride free).  An empty bucket rejects
	// with ErrQuota.
	TenantQuota Quota
	// TenantQuotas overrides TenantQuota per tenant name.
	TenantQuotas map[string]Quota
	// ShedMargin is the deadline-shedding floor: a dequeued job whose
	// remaining end-to-end budget (submit time + timeout - now) is below
	// it is finalized as StateShed instead of run — it would certainly
	// time out mid-solve (0 = 10ms, negative = shedding disabled).
	ShedMargin time.Duration
	// BrownoutAfter is how long queue occupancy must stay >= 3/4 of
	// QueueDepth before the brownout level escalates one step (and <= 1/4
	// before it de-escalates); see the Brownout* levels in admission.go
	// (0 = 2s, negative = brownout disabled).
	BrownoutAfter time.Duration
	// BreakerThreshold is the number of consecutive panicked/stalled
	// attempts that open an engine's circuit breaker, routing new jobs
	// straight to the degraded engine for BreakerCooldown before a
	// half-open probe (0 = 5, negative = breakers disabled).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker short-circuits before
	// probing the engine again (0 = 30s).
	BreakerCooldown time.Duration
	// SkipCertify disables independent re-checking of decisive results.
	// By default every Safe verdict's certificate is re-verified with
	// fresh solvers and every Unsafe trace is replayed before the result
	// is cached or served; a failed check demotes the result to Unknown.
	SkipCertify bool
	// Logf, when non-nil, receives one line per job state change.
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.StallTimeout == 0 {
		c.StallTimeout = 2 * time.Minute
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 1
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.Degrade == nil {
		c.Degrade = map[string]string{"ic3": "portfolio", "portfolio": "bmc"}
	}
	if c.ShedMargin == 0 {
		c.ShedMargin = 10 * time.Millisecond
	}
	if c.BrownoutAfter == 0 {
		c.BrownoutAfter = 2 * time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	return c
}

// Request describes one verification job.
type Request struct {
	// Source is the model text in the internal/ts format.
	Source string `json:"model"`
	// Tenant names the submitting tenant for quota accounting and
	// brownout shedding ("" = the anonymous default tenant).  It never
	// affects the verdict, so it is excluded from the cache key and
	// tenants share cached and in-flight results.
	Tenant string `json:"tenant,omitempty"`
	// Engine selects the engine: ic3 | bmc | kind | portfolio ("" = portfolio).
	Engine string `json:"engine"`
	// Timeout is the per-job budget, clamped to Config.MaxTimeout
	// (0 = Config.DefaultTimeout).
	Timeout time.Duration `json:"-"`
	// Eps is the ICP splitting width (0 = 1e-5).
	Eps float64 `json:"eps,omitempty"`
	// MaxDepth bounds BMC unrolling (0 = 128).
	MaxDepth int `json:"max_depth,omitempty"`
	// MaxK bounds k-induction depth (0 = 24).
	MaxK int `json:"max_k,omitempty"`
	// Generalize is the IC3 generalization mode: none | core | core+widen
	// ("" = core+widen).
	Generalize string `json:"generalize,omitempty"`
	// QueryWorkers is the goroutine count for IC3's parallel clause
	// pushing within this job (0 = 1, i.e. sequential; clamped to 64).
	// Verdicts do not depend on it, so it is excluded from the cache key.
	QueryWorkers int `json:"workers,omitempty"`
}

// normalize applies the request defaults so that equivalent requests
// produce identical cache keys, and validates the enumerations.
func (r Request) normalize(cfg Config) (Request, error) {
	switch r.Engine {
	case "":
		r.Engine = "portfolio"
	case "ic3", "bmc", "kind", "portfolio":
	default:
		return r, fmt.Errorf("unknown engine %q (want ic3 | bmc | kind | portfolio)", r.Engine)
	}
	switch r.Generalize {
	case "":
		r.Generalize = "core+widen"
	case "none", "core", "core+widen":
	default:
		return r, fmt.Errorf("unknown generalization mode %q (want none | core | core+widen)", r.Generalize)
	}
	if r.Eps <= 0 {
		r.Eps = 1e-5
	}
	if r.MaxDepth <= 0 {
		r.MaxDepth = 128
	}
	if r.MaxK <= 0 {
		r.MaxK = 24
	}
	if r.QueryWorkers <= 0 {
		r.QueryWorkers = 1
	}
	if r.QueryWorkers > 64 {
		r.QueryWorkers = 64
	}
	if r.Timeout <= 0 {
		r.Timeout = cfg.DefaultTimeout
	}
	if r.Timeout > cfg.MaxTimeout {
		r.Timeout = cfg.MaxTimeout
	}
	return r, nil
}

// cacheKey is the canonical identity of a job's answer: the system hash
// plus every option that can change the verdict.  The timeout is
// deliberately excluded — only decisive results are cached and those do
// not depend on the budget that found them.  QueryWorkers is likewise
// excluded: IC3's parallel clause pushing is deterministic across worker
// counts (shard-by-query-index, see internal/ic3icp/parallel.go), so a
// sequential and a parallel run of the same job share one answer.
func (r Request) cacheKey(sys *ts.System) string {
	return fmt.Sprintf("%s|engine=%s|eps=%g|depth=%d|k=%d|gen=%s",
		sys.Hash(), r.Engine, r.Eps, r.MaxDepth, r.MaxK, r.Generalize)
}

// State is the lifecycle state of a job.
type State int

const (
	StateQueued State = iota
	StateRunning
	StateDone
	StateCancelled
	// StateShed is the terminal state of a job the service accepted but
	// refused to run: its remaining end-to-end budget at dequeue time was
	// below Config.ShedMargin (it would certainly time out mid-solve), or
	// it was still queued when a shutdown drain ran out of grace.
	StateShed
)

func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateShed:
		return "shed"
	}
	return "cancelled"
}

// Final reports whether s is a terminal state.
func (s State) Final() bool {
	return s == StateDone || s == StateCancelled || s == StateShed
}

// job is the internal record of one submission.  All mutable fields are
// guarded by Service.mu; done is closed exactly once when the job
// reaches a final state.
type job struct {
	id  string
	req Request
	sys *ts.System
	key string
	// groupKey is the in-flight coalescing identity: the cache key plus
	// the requested budget.  Unlike decisive cached results, a shared
	// in-flight result may be a budget-limited Unknown, so only jobs
	// with the same budget ride together.
	groupKey string

	state     State
	cancelled bool // cancellation requested (close(cancel) happened)
	result    engine.Result
	cacheHit  bool
	coalesced bool

	attempts   int    // engine attempts made (>= 1 once running)
	engineUsed string // engine of the final attempt (after degradation)
	certified  bool   // decisive result passed independent certification
	reused     string // reuse-match description when seeded from a prior proof
	breaker    string // breaker short-circuit description, "" when none

	submitted time.Time
	deadline  time.Time // end-to-end deadline: submitted + request budget
	started   time.Time
	finished  time.Time

	cancel chan struct{} // closed on Cancel/forced shutdown; aborts the engine
	done   chan struct{} // closed when the job reaches a final state
}

// Status is an immutable snapshot of a job, safe to serialize.
type Status struct {
	ID        string `json:"id"`
	Engine    string `json:"engine"`
	State     string `json:"state"`
	System    string `json:"system"`
	Tenant    string `json:"tenant,omitempty"`
	Key       string `json:"key"`
	CacheHit  bool   `json:"cache_hit"`
	Coalesced bool   `json:"coalesced,omitempty"`
	// Attempts counts engine attempts (> 1 after panic/stall retries);
	// EngineUsed is the engine of the final attempt, which differs from
	// Engine after degradation; Certified reports that the decisive
	// result passed independent re-checking.
	Attempts   int    `json:"attempts,omitempty"`
	EngineUsed string `json:"engine_used,omitempty"`
	Certified  bool   `json:"certified,omitempty"`
	// Reused describes the prior certificate this run was seeded from
	// ("exact" or the changed parts with their distance); empty for cold
	// runs.
	Reused string `json:"reused,omitempty"`
	// Breaker describes a circuit-breaker short-circuit (e.g.
	// "ic3 -> portfolio"); empty when the job ran its requested engine.
	Breaker   string        `json:"breaker,omitempty"`
	Verdict   string        `json:"verdict,omitempty"`
	Depth     int           `json:"depth,omitempty"`
	Note      string        `json:"note,omitempty"`
	Trace     []ts.State    `json:"trace,omitempty"`
	Runtime   time.Duration `json:"-"`
	RuntimeMS int64         `json:"runtime_ms"`
}

// Service is the concurrent verification service.
type Service struct {
	cfg       Config
	cache     *resultCache
	metrics   *Metrics
	store     *reuse.Store // certificate-reuse store; nil when disabled
	admission *admission
	breakers  *breaker

	mu       sync.Mutex
	jobs     map[string]*job   // guarded-by: mu
	order    []string          // guarded-by: mu; submission order, for List
	inflight map[string][]*job // guarded-by: mu; cache key -> leader-first group of live jobs
	queue    chan *job
	closed   bool  // guarded-by: mu
	idSeq    int64 // guarded-by: mu

	workers sync.WaitGroup
}

// New starts a service with cfg's worker pool.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:       cfg,
		cache:     newResultCache(cfg.CacheSize),
		metrics:   newMetrics(),
		admission: newAdmission(cfg),
		breakers:  newBreaker(cfg),
		jobs:      make(map[string]*job),
		inflight:  make(map[string][]*job),
		queue:     make(chan *job, cfg.QueueDepth),
	}
	s.metrics.breakers = s.breakers
	if cfg.Reuse {
		store, err := reuse.Open(cfg.CacheDir, cfg.ReuseStoreSize)
		if err != nil {
			// degrade to a memory-only cache rather than refuse to start:
			// reuse is an optimization, the persistence dir is not vital
			s.logf("service: %v, certificate cache is memory-only", err)
			store, _ = reuse.Open("", cfg.ReuseStoreSize)
		}
		s.store = store
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// Metrics returns the service's metrics aggregator.
func (s *Service) Metrics() *Metrics { return s.metrics }

func (s *Service) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Submit parses, normalizes and enqueues a request.  On a cache hit the
// returned job is already done; when an identical job is in flight the
// submission is coalesced onto it.  Submit returns an error for invalid
// requests (bad model or options), when the tenant's token bucket is
// empty (ErrQuota), when the brownout controller is shedding the
// tenant's priority class (ErrShed), when the queue is full (ErrBusy),
// or after Shutdown began (ErrClosed).  Rejections carry a retry hint
// readable via RetryAfter.
func (s *Service) Submit(req Request) (Status, error) {
	req, err := req.normalize(s.cfg)
	if err != nil {
		s.metrics.incRejected()
		return Status{}, err
	}
	sys, err := ts.Parse(req.Source)
	if err != nil {
		s.metrics.incRejected()
		return Status{}, fmt.Errorf("parse: %w", err)
	}
	if err := sys.Validate(); err != nil {
		s.metrics.incRejected()
		return Status{}, err
	}
	key := req.cacheKey(sys)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Status{}, ErrClosed
	}
	s.observePressureLocked()
	s.idSeq++
	now := time.Now()
	jb := &job{
		id:        fmt.Sprintf("j%06d", s.idSeq),
		req:       req,
		sys:       sys,
		key:       key,
		groupKey:  key + "|t=" + req.Timeout.String(),
		submitted: now,
		deadline:  now.Add(req.Timeout),
		cancel:    make(chan struct{}),
		done:      make(chan struct{}),
	}
	s.metrics.incSubmitted()
	s.metrics.incTenantSubmitted(req.Tenant)

	if res, ok := s.cache.Get(key); ok {
		s.metrics.incHit()
		jb.state = StateDone
		jb.cacheHit = true
		jb.result = res
		jb.started = jb.submitted
		jb.finished = jb.submitted
		close(jb.done)
		s.registerLocked(jb)
		s.logf("job %s: cache hit (%s, %s)", jb.id, jb.req.Engine, res.Verdict)
		return s.statusLocked(jb), nil
	}
	s.metrics.incMiss()

	group := s.inflight[jb.groupKey]
	if len(group) > 0 {
		// identical job in flight: ride along instead of recomputing
		jb.coalesced = true
		s.metrics.incCoalesced()
		s.inflight[jb.groupKey] = append(group, jb)
		s.registerLocked(jb)
		s.logf("job %s: coalesced onto %s", jb.id, group[0].id)
		return s.statusLocked(jb), nil
	}
	// admission: only submissions about to consume a worker are charged
	// to the tenant's bucket — cache hits and coalesced followers above
	// cost (nearly) nothing and rode free
	if retry, aerr := s.admission.admit(req.Tenant); aerr != nil {
		if errors.Is(aerr, ErrShed) {
			s.metrics.incShedBrownout(req.Tenant)
			s.logf("job intake: tenant %q shed at brownout level %d", req.Tenant, s.admission.brownoutLevel())
		} else {
			s.metrics.incQuotaRejected(req.Tenant)
		}
		return Status{}, &rejectError{err: aerr, retryAfter: retry}
	}
	select {
	case s.queue <- jb:
	default:
		s.metrics.incBusy()
		return Status{}, &rejectError{err: ErrBusy, retryAfter: time.Second}
	}
	s.inflight[jb.groupKey] = []*job{jb}
	s.registerLocked(jb)
	s.logf("job %s: queued (%s, %s)", jb.id, jb.sys.Name, jb.req.Engine)
	return s.statusLocked(jb), nil
}

// observePressureLocked feeds the brownout controller one queue sample
// and publishes level transitions; caller holds mu.
func (s *Service) observePressureLocked() {
	level, changed := s.admission.observeQueue(len(s.queue), cap(s.queue))
	if changed {
		s.metrics.setBrownoutLevel(level)
		s.logf("brownout: level %d (queue %d/%d)", level, len(s.queue), cap(s.queue))
	}
}

// registerLocked records the job for Job/List; caller holds mu.
func (s *Service) registerLocked(jb *job) {
	s.jobs[jb.id] = jb
	s.order = append(s.order, jb.id)
}

// Job returns a snapshot of the job with the given id.
func (s *Service) Job(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jb, ok := s.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	return s.statusLocked(jb), nil
}

// List returns snapshots of all jobs in submission order.
func (s *Service) List() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	return out
}

// Wait blocks until the job reaches a final state or d elapses, then
// returns its snapshot.
func (s *Service) Wait(id string, d time.Duration) (Status, error) {
	s.mu.Lock()
	jb, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Status{}, ErrNotFound
	}
	if d > 0 {
		select {
		case <-jb.done:
		case <-time.After(d):
		}
	} else {
		<-jb.done
	}
	return s.Job(id)
}

// Cancel requests cancellation of a job.  Queued jobs are finalized
// immediately (promoting a coalesced follower, if any, to keep the key
// alive); running jobs abort cooperatively through their budget.
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	jb, ok := s.jobs[id]
	if !ok {
		return ErrNotFound
	}
	switch jb.state {
	case StateDone, StateCancelled, StateShed:
		return ErrFinished
	case StateRunning:
		if !jb.cancelled {
			jb.cancelled = true
			close(jb.cancel) // the worker observes it and finalizes
		}
	case StateQueued:
		if !jb.cancelled {
			jb.cancelled = true
			close(jb.cancel)
		}
		wasLeader := len(s.inflight[jb.groupKey]) > 0 && s.inflight[jb.groupKey][0] == jb
		s.removeFromGroupLocked(jb)
		s.finalizeCancelLocked(jb, "cancelled while queued")
		if wasLeader {
			s.promoteLocked(jb.groupKey)
		}
	}
	s.logf("job %s: cancel requested", jb.id)
	return nil
}

// Shutdown stops intake, drains queued and running jobs, and waits for
// the workers to exit.  If ctx expires first, every remaining job is
// cancelled cooperatively and Shutdown still waits for the workers (the
// engines abort promptly), returning ctx.Err().
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue) // all sends hold mu and check closed first
	}
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		defer close(idle)
		engine.GuardGo("service.shutdown-wait", s.cfg.Logf, s.workers.Wait)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
	}

	// grace expired: shed everything still queued (a terminal status the
	// client can see, never a silent drop) and abort everything running
	s.mu.Lock()
	for _, jb := range s.jobs {
		switch jb.state {
		case StateQueued:
			if !jb.cancelled {
				jb.cancelled = true
				close(jb.cancel)
			}
			s.removeFromGroupLocked(jb)
			s.metrics.incShedDrain(jb.req.Tenant)
			s.finalizeShedLocked(jb, "shed: service shutting down, drain grace expired")
		case StateRunning:
			if !jb.cancelled {
				jb.cancelled = true
				close(jb.cancel)
			}
		}
	}
	s.mu.Unlock()
	<-idle
	return ctx.Err()
}

// worker runs jobs from the queue until it is closed and drained.
func (s *Service) worker() {
	defer s.workers.Done()
	for jb := range s.queue {
		s.mu.Lock()
		if jb.state != StateQueued {
			// cancelled (and finalized) while sitting in the queue
			s.mu.Unlock()
			continue
		}
		s.observePressureLocked()
		// Deadline-aware shed: a job whose end-to-end budget has already
		// been eaten by queueing would burn this worker on a certain
		// timeout — refuse to run it and promote any follower (submitted
		// later, so with more budget left).
		if s.cfg.ShedMargin > 0 && time.Until(jb.deadline) < s.cfg.ShedMargin {
			s.metrics.incShedDeadline(jb.req.Tenant)
			s.removeFromGroupLocked(jb)
			s.finalizeShedLocked(jb, fmt.Sprintf("shed: %v of the %v budget spent queued",
				time.Since(jb.submitted).Round(time.Millisecond), jb.req.Timeout))
			s.promoteLocked(jb.groupKey)
			s.mu.Unlock()
			continue
		}
		jb.state = StateRunning
		jb.started = time.Now()
		s.mu.Unlock()

		res, sup := s.runSupervised(jb)

		s.mu.Lock()
		req := jb.req
		jb.finished = time.Now()
		jb.attempts = sup.attempts
		jb.engineUsed = sup.engineUsed
		jb.certified = sup.certified
		jb.reused = sup.reused
		jb.breaker = sup.breaker
		if jb.cancelled {
			jb.state = StateCancelled
			jb.result = res
			s.metrics.incCancelled()
			s.removeFromGroupLocked(jb)
			s.promoteLocked(jb.groupKey)
			s.logf("job %s: cancelled after %v", jb.id, jb.finished.Sub(jb.started))
		} else {
			jb.state = StateDone
			jb.result = res
			s.metrics.recordCompleted(sup.engineUsed, res.Verdict.String(), jb.finished.Sub(jb.started))
			if res.Verdict != engine.Unknown {
				if filled, evicted := s.cache.Put(jb.key, res); filled {
					s.metrics.recordFill(evicted)
				}
			}
			// complete the coalesced followers with the same result
			for _, f := range s.inflight[jb.groupKey] {
				if f == jb || f.state != StateQueued {
					continue
				}
				f.state = StateDone
				f.result = res
				f.started = jb.started
				f.finished = jb.finished
				close(f.done)
			}
			delete(s.inflight, jb.groupKey)
			s.logf("job %s: %s (%s, depth %d, %v)", jb.id, res.Verdict, req.Engine,
				res.Depth, jb.finished.Sub(jb.started).Round(time.Millisecond))
		}
		close(jb.done)
		s.mu.Unlock()
	}
}

// removeFromGroupLocked drops jb from its in-flight group; caller holds mu.
func (s *Service) removeFromGroupLocked(jb *job) {
	group := s.inflight[jb.groupKey]
	for i, g := range group {
		if g == jb {
			group = append(group[:i], group[i+1:]...)
			break
		}
	}
	if len(group) == 0 {
		delete(s.inflight, jb.groupKey)
	} else {
		s.inflight[jb.groupKey] = group
	}
}

// promoteLocked makes the oldest live follower of key the new leader and
// enqueues it; caller holds mu.  Followers that cannot be enqueued
// (shutdown, full queue) are finalized as cancelled so no job is lost
// silently.
func (s *Service) promoteLocked(key string) {
	for {
		group := s.inflight[key]
		if len(group) == 0 {
			delete(s.inflight, key)
			return
		}
		next := group[0]
		if next.state != StateQueued {
			s.inflight[key] = group[1:]
			continue
		}
		if !s.closed {
			select {
			case s.queue <- next:
				s.logf("job %s: promoted to leader", next.id)
				return
			default:
			}
		}
		s.inflight[key] = group[1:]
		if s.closed {
			s.metrics.incShedDrain(next.req.Tenant)
			s.finalizeShedLocked(next, "shed: service shutting down during promotion")
		} else {
			s.finalizeCancelLocked(next, "queue full during promotion")
		}
	}
}

// finalizeCancelLocked moves a queued job to its final cancelled state;
// caller holds mu.
func (s *Service) finalizeCancelLocked(jb *job, note string) {
	jb.state = StateCancelled
	jb.finished = time.Now()
	jb.result = engine.Result{Verdict: engine.Unknown, Note: note}
	s.metrics.incCancelled()
	close(jb.done)
}

// finalizeShedLocked moves a queued job to its terminal shed state;
// caller holds mu.  Shed is load shedding, not cancellation: the
// service accepted the job and is refusing to run it, loudly.
func (s *Service) finalizeShedLocked(jb *job, note string) {
	jb.state = StateShed
	jb.finished = time.Now()
	jb.result = engine.Result{Verdict: engine.Unknown, Note: note}
	close(jb.done)
	s.logf("job %s: %s", jb.id, note)
}

// statusLocked snapshots a job; caller holds mu.
func (s *Service) statusLocked(jb *job) Status {
	st := Status{
		ID:        jb.id,
		Engine:    jb.req.Engine,
		State:     jb.state.String(),
		System:    jb.sys.Name,
		Tenant:    jb.req.Tenant,
		Key:       jb.key,
		CacheHit:  jb.cacheHit,
		Coalesced: jb.coalesced,
	}
	st.Attempts = jb.attempts
	st.EngineUsed = jb.engineUsed
	st.Certified = jb.certified
	st.Reused = jb.reused
	st.Breaker = jb.breaker
	if jb.state.Final() {
		st.Verdict = jb.result.Verdict.String()
		st.Depth = jb.result.Depth
		st.Note = jb.result.Note
		st.Trace = jb.result.Trace
		st.Runtime = jb.result.Runtime
		if jb.cacheHit {
			st.Runtime = 0
		} else if !jb.started.IsZero() && !jb.finished.IsZero() {
			st.Runtime = jb.finished.Sub(jb.started)
		}
		st.RuntimeMS = st.Runtime.Milliseconds()
	}
	return st
}

// runEngine dispatches a normalized request to the chosen engine; prog
// (may be nil) receives the engine's progress heartbeat for the
// watchdog; hints (zero = cold) carry prior-certificate seeds.
func runEngine(sys *ts.System, req Request, budget engine.Budget, prog *engine.Progress, hints seedHints) engine.Result {
	solver := icp.Options{Eps: req.Eps}
	gen, genSet := genMode(req.Generalize)
	switch req.Engine {
	case "ic3":
		return ic3icp.Check(sys, ic3icp.Options{
			Solver: solver, Generalize: gen, GeneralizeSet: genSet,
			Workers: req.QueryWorkers, SeedClauses: hints.invariant,
			Budget: budget, Progress: prog,
		})
	case "bmc":
		return bmc.Check(sys, bmc.Options{MaxDepth: req.MaxDepth, Solver: solver, Budget: budget, Progress: prog})
	case "kind":
		return kind.Check(sys, kind.Options{MaxK: req.MaxK, Solver: solver, SeedK: hints.k, Budget: budget, Progress: prog})
	default: // portfolio
		return portfolio.Check(sys, portfolio.Options{
			IC3: ic3icp.Options{
				Solver: solver, Generalize: gen, GeneralizeSet: genSet,
				Workers: req.QueryWorkers, SeedClauses: hints.invariant,
			},
			BMC:        bmc.Options{MaxDepth: req.MaxDepth, Solver: solver},
			KInduction: kind.Options{MaxK: req.MaxK, Solver: solver, SeedK: hints.k},
			Budget:     budget,
			Progress:   prog,
		})
	}
}

func genMode(s string) (ic3icp.GenMode, bool) {
	switch s {
	case "none":
		return ic3icp.GenNone, true
	case "core":
		return ic3icp.GenCore, true
	}
	return ic3icp.GenCoreWiden, true
}
