package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// submitBody is the JSON body of POST /v1/jobs.
type submitBody struct {
	Model      string  `json:"model"`
	Tenant     string  `json:"tenant"`
	Engine     string  `json:"engine"`
	TimeoutMS  int64   `json:"timeout_ms"`
	WaitMS     int64   `json:"wait_ms"`
	Eps        float64 `json:"eps"`
	MaxDepth   int     `json:"max_depth"`
	MaxK       int     `json:"max_k"`
	Generalize string  `json:"generalize"`
	Workers    int     `json:"workers"` // IC3 clause-pushing goroutines (0 = sequential)
}

// Handler returns the HTTP API of the service:
//
//	POST /v1/jobs             submit a model; body {"model": "...", "engine": "ic3",
//	                          "timeout_ms": 5000, "wait_ms": 1000, ...}.
//	                          With wait_ms > 0 the response waits (up to that long)
//	                          for the verdict; 200 when final, 202 when still running.
//	GET  /v1/jobs             list all jobs
//	GET  /v1/jobs/{id}        poll one job
//	POST /v1/jobs/{id}/cancel cancel a queued or running job
//	GET  /metrics             deterministic plain-text counters and histograms
//	GET  /healthz             liveness probe
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var body submitBody
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	st, err := s.Submit(Request{
		Source:       body.Model,
		Tenant:       body.Tenant,
		Engine:       body.Engine,
		Timeout:      time.Duration(body.TimeoutMS) * time.Millisecond,
		Eps:          body.Eps,
		MaxDepth:     body.MaxDepth,
		MaxK:         body.MaxK,
		Generalize:   body.Generalize,
		QueryWorkers: body.Workers,
	})
	if err != nil {
		switch {
		case errors.Is(err, ErrBusy), errors.Is(err, ErrQuota), errors.Is(err, ErrShed):
			// Overload is a retryable client-side condition, not a server
			// fault: 429 with a Retry-After hint (quota rejections carry
			// the exact token-refill wait).
			retryAfterError(w, err)
		case errors.Is(err, ErrClosed):
			httpError(w, http.StatusServiceUnavailable, err)
		default:
			httpError(w, http.StatusBadRequest, err)
		}
		return
	}
	if body.WaitMS > 0 && !finalState(st.State) {
		st, _ = s.Wait(st.ID, time.Duration(body.WaitMS)*time.Millisecond)
	}
	code := http.StatusAccepted
	if finalState(st.State) {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	st, err := s.Job(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	switch err := s.Cancel(id); {
	case err == nil:
		st, jerr := s.Job(id)
		if jerr != nil {
			httpError(w, http.StatusNotFound, jerr)
			return
		}
		writeJSON(w, http.StatusOK, st)
	case errors.Is(err, ErrNotFound):
		httpError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrFinished):
		httpError(w, http.StatusConflict, err)
	default:
		httpError(w, http.StatusInternalServerError, err)
	}
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.metrics.WriteText(w)
}

// finalState reports whether a Status.State string is terminal.
func finalState(state string) bool {
	return state == StateDone.String() || state == StateCancelled.String() || state == StateShed.String()
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// retryAfterError renders an admission rejection as 429 Too Many
// Requests with a Retry-After header (whole seconds, minimum 1, per
// RFC 9110) and the precise wait in the JSON body.
func retryAfterError(w http.ResponseWriter, err error) {
	retry := RetryAfter(err)
	if retry <= 0 {
		retry = time.Second
	}
	secs := int(retry / time.Second)
	if retry%time.Second != 0 || secs == 0 {
		secs++
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, map[string]interface{}{
		"error":          err.Error(),
		"retry_after_ms": retry.Milliseconds(),
	})
}
