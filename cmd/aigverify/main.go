// Command aigverify model-checks an AIGER (ASCII .aag) circuit with the
// Boolean IC3/PDR engine or SAT-based BMC.
//
// Usage:
//
//	aigverify [flags] circuit.aag
//
// The bad-state target is the first entry of the AIGER 1.9 bad-state
// section if present, otherwise the first output.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"icpic3/internal/aig"
	"icpic3/internal/ic3bool"
	"icpic3/internal/sat"
)

func main() {
	var (
		engineName = flag.String("engine", "ic3", "engine: ic3 | bmc | both")
		depth      = flag.Int("depth", 256, "maximum BMC depth")
		frames     = flag.Int("frames", 0, "maximum IC3 frames (0 = default)")
		strong     = flag.Bool("strong", false, "strong (re-query) generalization in IC3")
		showTrace  = flag.Bool("trace", false, "print the counterexample trace")
		proofOut   = flag.String("proof", "", "write a DRAT proof of the BMC run to this file")
		doCertify  = flag.Bool("certify", false, "independently re-check an IC3 Safe invariant with a fresh SAT solver")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: aigverify [flags] circuit.aag")
		flag.PrintDefaults()
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()
	c, err := aig.ReadAAG(f)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("circuit: %d inputs, %d latches, %d and gates\n",
		len(c.Inputs), len(c.Latches), c.NumAnds())

	runIC3 := func() {
		t0 := time.Now()
		res := ic3bool.Check(c, ic3bool.Options{MaxFrames: *frames, StrongGeneralize: *strong})
		fmt.Printf("[ic3] %s (frames %d, %v)\n", res.Verdict, res.Frames,
			time.Since(t0).Round(time.Millisecond))
		if res.Verdict == ic3bool.Unsafe && *showTrace {
			printTrace(res.Trace)
		}
		if res.Verdict == ic3bool.Safe {
			fmt.Printf("[ic3] invariant: property plus %d blocked cubes\n", len(res.Invariant))
			if *doCertify {
				if err := ic3bool.VerifyInvariant(c, res.Invariant); err != nil {
					fail("CERTIFICATION FAILED: %v", err)
				}
				fmt.Println("[ic3] invariant independently certified")
			}
		}
	}
	runBMC := func() {
		t0 := time.Now()
		solver := sat.New()
		var proofFile *os.File
		if *proofOut != "" {
			var err error
			proofFile, err = os.Create(*proofOut)
			if err != nil {
				fail("proof: %v", err)
			}
			solver.SetProofWriter(proofFile)
		}
		res := ic3bool.BMCWithSolver(c, *depth, solver)
		if proofFile != nil {
			solver.FlushProof()
			proofFile.Close()
			fmt.Printf("[bmc] DRAT log written to %s\n", *proofOut)
		}
		fmt.Printf("[bmc] %s (depth %d, %v)\n", res.Verdict, res.Frames,
			time.Since(t0).Round(time.Millisecond))
		if res.Verdict == ic3bool.Unsafe && *showTrace {
			printTrace(res.Trace)
		}
	}

	switch *engineName {
	case "ic3":
		runIC3()
	case "bmc":
		runBMC()
	case "both":
		runIC3()
		runBMC()
	default:
		fail("unknown engine %q", *engineName)
	}
}

func printTrace(trace []ic3bool.Step) {
	for i, st := range trace {
		fmt.Printf("  step %2d: state=", i)
		for _, b := range st.State {
			if b {
				fmt.Print("1")
			} else {
				fmt.Print("0")
			}
		}
		if len(st.Inputs) > 0 {
			fmt.Print(" inputs=")
			for _, b := range st.Inputs {
				if b {
					fmt.Print("1")
				} else {
					fmt.Print("0")
				}
			}
		}
		fmt.Println()
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "aigverify: "+format+"\n", args...)
	os.Exit(2)
}
