package main

import "icpic3/internal/harness"

import "testing"

func run(solved, wrong int, engines ...harness.BenchEngine) harness.BenchRun {
	return harness.BenchRun{Solved: solved, Wrong: wrong, WallSec: 1, Engines: engines}
}

func eng(name string, solved int, sps float64, wrong int) harness.BenchEngine {
	return harness.BenchEngine{
		Engine: name, SolvedSafe: solved, SolvedPerSec: sps, Wrong: wrong,
		EngineSec: 10, // above minGateSec so the throughput gate applies
	}
}

func TestDiffRunNoRegression(t *testing.T) {
	old := run(10, 0, eng("ic3-icp", 5, 1.0, 0))
	cur := run(11, 0, eng("ic3-icp", 6, 1.2, 0))
	if diffRun("baseline", old, cur, 0.10, 0.10) {
		t.Fatal("improvement flagged as regression")
	}
}

func TestDiffRunFlagsFewerSolved(t *testing.T) {
	old := run(10, 0, eng("ic3-icp", 5, 1.0, 0))
	cur := run(9, 0, eng("ic3-icp", 4, 1.0, 0))
	if !diffRun("baseline", old, cur, 0.10, 0.10) {
		t.Fatal("solved drop not flagged")
	}
}

func TestDiffRunFlagsWrongVerdicts(t *testing.T) {
	old := run(10, 0, eng("ic3-icp", 5, 1.0, 0))
	cur := run(10, 1, eng("ic3-icp", 5, 1.0, 1))
	if !diffRun("baseline", old, cur, 0.10, 0.10) {
		t.Fatal("new wrong verdict not flagged")
	}
}

func report(speedup float64, procs, workers int) *harness.BenchReport {
	return &harness.BenchReport{
		GoMaxProcs: procs,
		SpeedupX:   speedup,
		Parallel:   harness.BenchRun{Workers: workers},
	}
}

func TestDiffScalingFlagsDrop(t *testing.T) {
	if !diffScaling(report(3.0, 8, 8), report(1.5, 8, 8), 0.10) {
		t.Fatal("halved speedup at identical config not flagged")
	}
	if diffScaling(report(3.0, 8, 8), report(2.9, 8, 8), 0.10) {
		t.Fatal("within-tolerance speedup jitter flagged")
	}
	if diffScaling(report(3.0, 8, 8), report(3.4, 8, 8), 0.10) {
		t.Fatal("improvement flagged as regression")
	}
}

func TestDiffScalingSkipsConfigChanges(t *testing.T) {
	// the seed-era snapshots ran at gomaxprocs 1 (speedup ~1x); the jump
	// to NumCPU changes the config, so the ratio is tracked, not gated
	if diffScaling(report(1.0, 1, 1), report(0.8, 8, 8), 0.10) {
		t.Fatal("cross-config speedup change gated")
	}
	if diffScaling(report(3.0, 8, 8), report(1.0, 8, 4), 0.10) {
		t.Fatal("worker-count change gated")
	}
}

func TestDiffRunSkipsThroughputGateOnTinySamples(t *testing.T) {
	// sub-second engine times make solved/sec pure scheduler jitter:
	// a "13% drop" here is ~30ms of wall — tracked, never gated
	tiny := func(sps float64) harness.BenchEngine {
		e := eng("kind-icp", 26, sps, 0)
		e.EngineSec = 0.25
		return e
	}
	old := run(26, 0, tiny(110.0))
	cur := run(26, 0, tiny(87.0))
	if diffRun("parallel", old, cur, 0.10, 0.10) {
		t.Fatal("sub-second throughput jitter gated")
	}
}

// engQ builds a per-engine slice carrying the work-profile counters.
func engQ(name string, solved int, queries, attempts, skipped, rebuilds int64) harness.BenchEngine {
	return harness.BenchEngine{
		Engine: name, SolvedSafe: solved, SolvedPerSec: 1.0,
		Queries: queries, PushAttempts: attempts, PushSkipped: skipped,
		SolverRebuilds: rebuilds,
	}
}

func TestDiffRunFlagsQueryGrowth(t *testing.T) {
	old := run(10, 0, engQ("ic3-icp", 10, 1000, 50, 200, 2))
	cur := run(10, 0, engQ("ic3-icp", 10, 1200, 300, 0, 2))
	if !diffRun("baseline", old, cur, 0.10, 0.10) {
		t.Fatal("20% query growth not flagged at 10% tolerance")
	}
	// within tolerance: jitter, not a regression
	cur = run(10, 0, engQ("ic3-icp", 10, 1050, 50, 200, 2))
	if diffRun("baseline", old, cur, 0.10, 0.10) {
		t.Fatal("within-tolerance query jitter flagged")
	}
	// fewer queries is the goal, never a regression
	cur = run(10, 0, engQ("ic3-icp", 10, 400, 20, 300, 1))
	if diffRun("baseline", old, cur, 0.10, 0.10) {
		t.Fatal("query reduction flagged as regression")
	}
}

func TestDiffRunSkipsQueryGateWithoutOldCounts(t *testing.T) {
	// snapshots predating the work-profile counters carry queries == 0:
	// tracked in the output, never gated
	old := run(10, 0, eng("ic3-icp", 5, 1.0, 0))
	cur := run(10, 0, engQ("ic3-icp", 5, 50000, 4000, 0, 0))
	if diffRun("baseline", old, cur, 0.10, 0.10) {
		t.Fatal("query gate fired against a counter-less old snapshot")
	}
}

func TestDiffRunFlagsThroughputDrop(t *testing.T) {
	old := run(10, 0, eng("ic3-icp", 5, 1.0, 0))
	cur := run(10, 0, eng("ic3-icp", 5, 0.5, 0))
	if !diffRun("baseline", old, cur, 0.10, 0.10) {
		t.Fatal("solved/sec collapse not flagged")
	}
	// within tolerance: not a regression
	cur = run(10, 0, eng("ic3-icp", 5, 0.95, 0))
	if diffRun("baseline", old, cur, 0.10, 0.10) {
		t.Fatal("within-tolerance jitter flagged")
	}
}
