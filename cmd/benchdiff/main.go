// benchdiff compares two BENCH_<date>.json snapshots (see make
// bench-json) and prints per-run and per-engine deltas: solved counts,
// wall-clock, solved/sec, solver work profile (queries, push attempts
// and triggered skips, solver rebuilds), and worker scaling
// (speedup_x).  It exits 1 when the new snapshot regresses — fewer
// instances solved, any wrong verdict appearing, a per-engine
// solved/sec drop beyond the tolerance, a per-engine query-count
// increase beyond the queries tolerance, or a same-config speedup_x
// drop beyond the tolerance — so CI and PR workflows can gate on
// `make bench-diff OLD=... NEW=...`.
//
// Query counts are machine-independent, so the queries gate catches
// algorithmic regressions (e.g. triggered pushing silently re-attempting
// everything) that wall-clock jitter on a busy CI box would mask.
// Snapshots predating the work-profile counters carry zero queries and
// are tracked but not gated.
//
// Usage:
//
//	benchdiff [-tolerance 0.10] [-queries-tolerance 0.10] OLD.json NEW.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"icpic3/internal/harness"
)

func load(path string) (*harness.BenchReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep harness.BenchReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// minGateSec is the minimum per-engine measured time (in either
// snapshot) for the solved/sec gate to be meaningful.
const minGateSec = 1.0

// engineMap indexes a run's engine slices by name.
func engineMap(r harness.BenchRun) map[string]harness.BenchEngine {
	m := make(map[string]harness.BenchEngine, len(r.Engines))
	for _, e := range r.Engines {
		m[e.Engine] = e
	}
	return m
}

// diffRun prints the leg-level comparison and reports regressions.
// qtol bounds the allowed per-engine query-count growth; engines whose
// old snapshot predates the work-profile counters (queries == 0) are
// tracked but not gated.
func diffRun(label string, old, new harness.BenchRun, tol, qtol float64) (regressed bool) {
	fmt.Printf("%s: solved %d -> %d (%+d), unknown %d -> %d, wrong %d -> %d, wall %.2fs -> %.2fs (%+.1f%%)\n",
		label, old.Solved, new.Solved, new.Solved-old.Solved,
		old.Unknown, new.Unknown, old.Wrong, new.Wrong,
		old.WallSec, new.WallSec, pct(new.WallSec, old.WallSec))
	if new.Solved < old.Solved {
		fmt.Printf("  REGRESSION: %s solves fewer instances\n", label)
		regressed = true
	}
	if new.Wrong > old.Wrong {
		fmt.Printf("  REGRESSION: %s has new wrong verdicts\n", label)
		regressed = true
	}
	oldByName := engineMap(old)
	// iterate in the new run's slice order (stable across runs), not map order
	for _, ne := range new.Engines {
		oe, ok := oldByName[ne.Engine]
		if !ok {
			fmt.Printf("  %-12s new engine: solved %d, %.2f solved/sec\n",
				ne.Engine, ne.SolvedSafe+ne.SolvedUnsaf, ne.SolvedPerSec)
			continue
		}
		oldSolved := oe.SolvedSafe + oe.SolvedUnsaf
		newSolved := ne.SolvedSafe + ne.SolvedUnsaf
		fmt.Printf("  %-12s solved %d -> %d, solved/sec %.2f -> %.2f (%+.1f%%), wrong %d -> %d\n",
			ne.Engine, oldSolved, newSolved,
			oe.SolvedPerSec, ne.SolvedPerSec, pct(ne.SolvedPerSec, oe.SolvedPerSec),
			oe.Wrong, ne.Wrong)
		if ne.Wrong > oe.Wrong {
			fmt.Printf("  REGRESSION: %s wrong verdicts increased\n", ne.Engine)
			regressed = true
		}
		if newSolved < oldSolved {
			fmt.Printf("  REGRESSION: %s solves fewer instances\n", ne.Engine)
			regressed = true
		}
		if oe.SolvedPerSec > 0 && ne.SolvedPerSec < oe.SolvedPerSec*(1-tol) {
			// a rate computed over a sub-second engine-time sample is
			// dominated by scheduler jitter (tens of ms flip the gate);
			// track it, gate only rates measured over >= 1s of work
			if oe.EngineSec < minGateSec && ne.EngineSec < minGateSec {
				fmt.Printf("  (%s engine time < %.0fs in both snapshots; throughput tracked, not gated)\n",
					ne.Engine, minGateSec)
			} else {
				fmt.Printf("  REGRESSION: %s solved/sec dropped more than %.0f%%\n", ne.Engine, tol*100)
				regressed = true
			}
		}
		if oe.Queries > 0 || ne.Queries > 0 {
			fmt.Printf("  %-12s queries %d -> %d (%+.1f%%), push %d/%d skipped -> %d/%d skipped, rebuilds %d -> %d\n",
				ne.Engine, oe.Queries, ne.Queries, pct(float64(ne.Queries), float64(oe.Queries)),
				oe.PushAttempts, oe.PushSkipped, ne.PushAttempts, ne.PushSkipped,
				oe.SolverRebuilds, ne.SolverRebuilds)
		}
		if oe.Queries > 0 && float64(ne.Queries) > float64(oe.Queries)*(1+qtol) {
			fmt.Printf("  REGRESSION: %s query count grew more than %.0f%%\n", ne.Engine, qtol*100)
			regressed = true
		}
		// Assumption-aware query-core counters: savings metrics (higher is
		// better — their regressions surface through the queries and
		// solved/sec gates), so they are tracked, not gated.  Snapshots
		// predating them carry zeros and are skipped on that side.
		if oe.TrailEventsSaved > 0 || ne.TrailEventsSaved > 0 ||
			oe.ConsecCacheHits > 0 || ne.ConsecCacheHits > 0 ||
			oe.TNFOpsPruned > 0 || ne.TNFOpsPruned > 0 {
			fmt.Printf("  %-12s retained %d levels/%d events -> %d/%d, memo %d/%d hit -> %d/%d, tnf pruned %d -> %d\n",
				ne.Engine,
				oe.PrefixKeptLevels, oe.TrailEventsSaved, ne.PrefixKeptLevels, ne.TrailEventsSaved,
				oe.ConsecCacheHits, oe.ConsecCacheHits+oe.ConsecCacheMiss,
				ne.ConsecCacheHits, ne.ConsecCacheHits+ne.ConsecCacheMiss,
				oe.TNFOpsPruned, ne.TNFOpsPruned)
		}
	}
	return regressed
}

// diffScaling tracks worker scaling (speedup_x = baseline wall /
// parallel wall) across snapshots.  A drop beyond the tolerance is a
// regression, but only when both snapshots ran at the same gomaxprocs
// and worker count — across different machines or pool sizes the ratio
// measures the config change, not the code.
func diffScaling(old, cur *harness.BenchReport, tol float64) (regressed bool) {
	fmt.Printf("scaling: speedup %.2fx -> %.2fx (gomaxprocs %d -> %d, workers %d -> %d)\n",
		old.SpeedupX, cur.SpeedupX, old.GoMaxProcs, cur.GoMaxProcs,
		old.Parallel.Workers, cur.Parallel.Workers)
	if old.GoMaxProcs != cur.GoMaxProcs || old.Parallel.Workers != cur.Parallel.Workers {
		fmt.Println("  (run configs differ; speedup tracked but not gated)")
		return false
	}
	if old.SpeedupX > 0 && cur.SpeedupX < old.SpeedupX*(1-tol) {
		fmt.Printf("  REGRESSION: worker scaling dropped more than %.0f%%\n", tol*100)
		return true
	}
	return false
}

// pct is the relative change of b vs a in percent (0 when a is 0).
func pct(b, a float64) float64 {
	if a == 0 {
		return 0
	}
	return (b - a) / a * 100
}

func main() {
	tol := flag.Float64("tolerance", 0.10, "allowed relative solved/sec drop per engine before flagging a regression")
	qtol := flag.Float64("queries-tolerance", 0.10, "allowed relative solver-query growth per engine before flagging a regression")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tolerance 0.10] [-queries-tolerance 0.10] OLD.json NEW.json")
		os.Exit(2)
	}
	old, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fmt.Printf("benchdiff %s (%s) -> %s (%s), %d -> %d instances\n",
		flag.Arg(0), old.Date, flag.Arg(1), cur.Date, old.Instances, cur.Instances)
	regressed := diffRun("baseline", old.Baseline, cur.Baseline, *tol, *qtol)
	if diffRun("parallel", old.Parallel, cur.Parallel, *tol, *qtol) {
		regressed = true
	}
	if diffScaling(old, cur, *tol) {
		regressed = true
	}
	if regressed {
		os.Exit(1)
	}
}
