// Command icploadgen drives the verification service through a staged
// overload ramp and reports what the admission-control layer did about
// it (DESIGN.md §14).
//
// Usage:
//
//	icploadgen [-stages 25x5s,100x5s,400x10s] [-engine portfolio]
//	           [-timeout 2s] [-short-timeout 60ms] [-short-every 4]
//	           [-tenants alice:5:10,batch:2:2:1] [-o report.json]
//	           [-max-p99 30s] [-expect-overload]
//	           [-server http://host:8080 | -workers N -queue N ...]
//
// Each stage submits benchmark-corpus jobs at a fixed rate for a fixed
// duration; rates beyond the service's capacity are the point.  Jobs
// rotate deterministically through the corpus, the tenant list, and a
// short/long budget mix, so runs are comparable.  The report (stdout or
// -o) is BENCH-style JSON: per-stage and total accept/reject/shed
// counts, p50/p99/max latency, and verdict correctness against the
// corpus ground truth.
//
// With -server the ramp hits a live icpserve over HTTP; without it an
// in-process service is built from the -workers/-queue/-shed-margin/...
// flags and shut down (with drain) at the end.
//
// The exit status makes icploadgen usable as a CI gate: it is nonzero
// when any verdict contradicted ground truth, any job got stuck without
// a terminal state, total p99 exceeded -max-p99 (when set), or
// -expect-overload was set but the ramp triggered no pushback.
//
// Tenant spec: name[:rate[:burst[:priority]]], comma-separated.  Rates,
// bursts, and priorities configure the in-process service's quotas
// (ignored with -server, where the server's own config rules); the
// names are used for submission rotation either way.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"icpic3/internal/harness"
	"icpic3/internal/service"
)

func main() {
	var (
		server     = flag.String("server", "", "icpserve base URL (default: in-process service)")
		stagesSpec = flag.String("stages", "25x5s,100x5s,400x10s", "ramp stages, RATExDURATION comma-separated")
		engineName = flag.String("engine", "portfolio", "engine every job requests")
		suiteSize  = flag.Int("suite", 2, "benchmark suite grid size (instances per family and polarity)")
		timeout    = flag.Duration("timeout", 2*time.Second, "budget of ordinary jobs")
		shortTO    = flag.Duration("short-timeout", 60*time.Millisecond, "budget of tight-deadline jobs")
		shortEvery = flag.Int("short-every", 4, "every Nth job gets the short budget (0 disables)")
		tenantSpec = flag.String("tenants", "", "tenant rotation, name[:rate[:burst[:priority]]] comma-separated")
		out        = flag.String("o", "", "write the JSON report here (default stdout)")
		maxP99     = flag.Duration("max-p99", 0, "fail when total p99 latency exceeds this (0 = no check)")
		expectOver = flag.Bool("expect-overload", false, "fail unless the ramp triggered quota/shed/busy pushback")

		workers    = flag.Int("workers", 0, "in-process worker pool size (0 = GOMAXPROCS)")
		queueDepth = flag.Int("queue", 64, "in-process queue depth")
		shedMargin = flag.Duration("shed-margin", 10*time.Millisecond, "in-process deadline-shedding floor (0 disables)")
		brownout   = flag.Duration("brownout-after", 2*time.Second, "in-process sustained-pressure window per brownout step (0 disables)")
		brkThresh  = flag.Int("breaker-threshold", 5, "in-process consecutive failures that open an engine breaker (0 disables)")
		brkCool    = flag.Duration("breaker-cooldown", 30*time.Second, "in-process breaker cooldown before a half-open probe")
		certifyRes = flag.Bool("certify", true, "in-process independent re-checking of decisive results")
		verbose    = flag.Bool("v", false, "log service state changes (in-process only)")
	)
	flag.Parse()

	stages, err := parseStages(*stagesSpec)
	if err != nil {
		log.Fatalf("icploadgen: %v", err)
	}
	tenants, quotas, err := parseTenants(*tenantSpec)
	if err != nil {
		log.Fatalf("icploadgen: %v", err)
	}

	var target harness.LoadTarget
	var svc *service.Service
	if *server != "" {
		target = &httpTarget{base: strings.TrimRight(*server, "/"), client: &http.Client{Timeout: 30 * time.Second}}
	} else {
		cfg := service.Config{
			Workers:          *workers,
			QueueDepth:       *queueDepth,
			ShedMargin:       orDisabled(*shedMargin),
			BrownoutAfter:    orDisabled(*brownout),
			BreakerThreshold: orDisabledInt(*brkThresh),
			BreakerCooldown:  *brkCool,
			TenantQuotas:     quotas,
			SkipCertify:      !*certifyRes,
		}
		if *verbose {
			cfg.Logf = log.Printf
		}
		svc = service.New(cfg)
		target = svc
	}

	rep, err := harness.RunLoad(target, harness.LoadConfig{
		Stages:       stages,
		SuiteSize:    *suiteSize,
		Engine:       *engineName,
		JobTimeout:   *timeout,
		ShortTimeout: *shortTO,
		ShortEvery:   orDisabledInt(*shortEvery),
		Tenants:      tenants,
	}, time.Now().Format("2006-01-02"))
	if err != nil {
		log.Fatalf("icploadgen: %v", err)
	}

	if svc != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		svc.Shutdown(ctx)
		cancel()
	}

	data, _ := json.MarshalIndent(rep, "", "  ")
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatalf("icploadgen: %v", err)
		}
	} else {
		os.Stdout.Write(data)
	}

	t := rep.Total
	log.Printf("icploadgen: %d submitted, %d accepted (%d hits, %d coalesced), rejected %d quota / %d shed / %d busy, %d shed after accept, %d done (%d decisive, %d unknown), p50 %gms p99 %gms",
		t.Submitted, t.Accepted, t.CacheHits, t.Coalesced, t.RejectedQuota, t.RejectedShed, t.RejectedBusy, t.Shed, t.Done, t.Decisive, t.Unknown, t.P50MS, t.P99MS)

	fail := false
	if t.Wrong > 0 {
		log.Printf("icploadgen: FAIL: %d wrong verdicts: %v", t.Wrong, rep.WrongNames)
		fail = true
	}
	if t.Stuck > 0 {
		log.Printf("icploadgen: FAIL: %d jobs never reached a terminal state", t.Stuck)
		fail = true
	}
	if *maxP99 > 0 && t.P99MS > float64(maxP99.Milliseconds()) {
		log.Printf("icploadgen: FAIL: p99 %gms exceeds -max-p99 %v", t.P99MS, *maxP99)
		fail = true
	}
	if *expectOver && !rep.Overloaded() {
		log.Printf("icploadgen: FAIL: -expect-overload set but the ramp triggered no pushback")
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}

// orDisabled maps a flag-level zero (explicit opt-out) to the Config
// negative disable value, since in Config zero means "use the default".
func orDisabled(d time.Duration) time.Duration {
	if d == 0 {
		return -1
	}
	return d
}

func orDisabledInt(n int) int {
	if n == 0 {
		return -1
	}
	return n
}

// parseStages parses "25x5s,100x5s" into LoadStages.
func parseStages(spec string) ([]harness.LoadStage, error) {
	var stages []harness.LoadStage
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rateStr, durStr, ok := strings.Cut(part, "x")
		if !ok {
			return nil, fmt.Errorf("stage %q: want RATExDURATION (e.g. 100x5s)", part)
		}
		rate, err := strconv.ParseFloat(rateStr, 64)
		if err != nil || rate <= 0 {
			return nil, fmt.Errorf("stage %q: bad rate %q", part, rateStr)
		}
		dur, err := time.ParseDuration(durStr)
		if err != nil || dur <= 0 {
			return nil, fmt.Errorf("stage %q: bad duration %q", part, durStr)
		}
		stages = append(stages, harness.LoadStage{Rate: rate, Duration: dur})
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf("no stages in %q", spec)
	}
	return stages, nil
}

// parseTenants parses "alice:5:10,batch:2:2:1,free" into the rotation
// list and the per-tenant quota map.
func parseTenants(spec string) ([]string, map[string]service.Quota, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil, nil
	}
	var names []string
	quotas := make(map[string]service.Quota)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		name := fields[0]
		if name == "" {
			return nil, nil, fmt.Errorf("tenant %q: empty name", part)
		}
		var q service.Quota
		var err error
		if len(fields) > 1 && fields[1] != "" {
			if q.Rate, err = strconv.ParseFloat(fields[1], 64); err != nil {
				return nil, nil, fmt.Errorf("tenant %q: bad rate: %v", part, err)
			}
		}
		if len(fields) > 2 && fields[2] != "" {
			if q.Burst, err = strconv.Atoi(fields[2]); err != nil {
				return nil, nil, fmt.Errorf("tenant %q: bad burst: %v", part, err)
			}
		}
		if len(fields) > 3 && fields[3] != "" {
			if q.Priority, err = strconv.Atoi(fields[3]); err != nil {
				return nil, nil, fmt.Errorf("tenant %q: bad priority: %v", part, err)
			}
		}
		if len(fields) > 4 {
			return nil, nil, fmt.Errorf("tenant %q: want name[:rate[:burst[:priority]]]", part)
		}
		names = append(names, name)
		if q != (service.Quota{}) {
			quotas[name] = q
		}
	}
	return names, quotas, nil
}

// httpTarget adapts a live icpserve to harness.LoadTarget.
type httpTarget struct {
	base   string
	client *http.Client
}

func (t *httpTarget) Submit(req service.Request) (service.Status, error) {
	body, err := json.Marshal(map[string]interface{}{
		"model":      req.Source,
		"tenant":     req.Tenant,
		"engine":     req.Engine,
		"timeout_ms": req.Timeout.Milliseconds(),
	})
	if err != nil {
		return service.Status{}, err
	}
	resp, err := t.client.Post(t.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return service.Status{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return service.Status{}, err
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
		var st service.Status
		if err := json.Unmarshal(data, &st); err != nil {
			return service.Status{}, fmt.Errorf("submit: bad response: %v", err)
		}
		return st, nil
	case http.StatusTooManyRequests:
		// recover the typed rejection from the error text so the tally
		// attributes it to the right limiter
		var e struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(data, &e)
		switch {
		case strings.Contains(e.Error, "quota"):
			return service.Status{}, service.ErrQuota
		case strings.Contains(e.Error, "shed"):
			return service.Status{}, service.ErrShed
		default:
			return service.Status{}, service.ErrBusy
		}
	default:
		return service.Status{}, fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
}

func (t *httpTarget) Wait(id string, d time.Duration) (service.Status, error) {
	deadline := time.Now().Add(d)
	var st service.Status
	for {
		resp, err := t.client.Get(t.base + "/v1/jobs/" + id)
		if err != nil {
			return st, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return st, err
		}
		if resp.StatusCode != http.StatusOK {
			return st, fmt.Errorf("poll %s: HTTP %d", id, resp.StatusCode)
		}
		if err := json.Unmarshal(data, &st); err != nil {
			return st, err
		}
		switch st.State {
		case "done", "cancelled", "shed":
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, nil // not terminal: the caller counts it stuck
		}
		time.Sleep(25 * time.Millisecond)
	}
}
