// Command icpserve runs the verification service as an HTTP server.
//
// Usage:
//
//	icpserve [-addr :8080] [-workers N] [-cache N] [-timeout 30s] [-grace 10s]
//	         [-reuse] [-cache-dir DIR] [-reuse-dist 0.25]
//	         [-quotas alice:5:10,batch:2:2:1] [-quota-rate R -quota-burst B]
//	         [-shed-margin 10ms] [-brownout-after 2s]
//	         [-breaker-threshold 5] [-breaker-cooldown 30s]
//
// The second line is the overload-control surface (DESIGN.md §14):
// per-tenant token-bucket quotas (jobs/second with a burst allowance;
// priority > 0 marks tenants shed first under brownout), a default
// quota for tenants without an override, deadline-aware shedding of
// queued jobs whose remaining budget has dropped below -shed-margin,
// brownout escalation after sustained queue pressure, and a per-engine
// circuit breaker.  Rejected submissions get HTTP 429 with Retry-After.
//
// With -reuse (implied by -cache-dir) every certified Safe proof is
// stored, and a resubmitted system close to a prior one starts seeded
// from its certificate: IC3 installs the still-inductive prior clauses
// at F_1 and k-induction skips step depths below the prior proof.
// Verdicts never depend on the cache; -cache-dir persists it across
// restarts.  See the icpserve_reuse_* lines of /metrics for hit rate
// and seeded-vs-cold speedup.
//
// Submit a model and wait for the verdict:
//
//	curl -s localhost:8080/v1/jobs -d '{
//	  "model": "system decay\nvar x : real [0, 10]\ninit x >= 0 and x <= 6\ntrans x'"'"' = x / 2\nprop x <= 8",
//	  "engine": "portfolio",
//	  "wait_ms": 30000
//	}'
//
// The optional per-job "workers" field sets the goroutine count for
// IC3's parallel clause pushing inside that job (0 = sequential); it
// changes wall-clock only, never the verdict, so cached answers are
// shared across worker counts.  Distinct from -workers, which sizes the
// service's job pool.
//
// Poll, cancel, observe:
//
//	curl -s localhost:8080/v1/jobs/j000001
//	curl -s -X POST localhost:8080/v1/jobs/j000001/cancel
//	curl -s localhost:8080/metrics
//
// On SIGINT/SIGTERM the server stops accepting work, drains in-flight
// jobs for up to -grace, cancels whatever is left, and logs the final
// metrics snapshot before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"icpic3/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		cacheSize  = flag.Int("cache", 256, "result cache size in entries")
		queueDepth = flag.Int("queue", 256, "maximum queued jobs")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-job budget")
		maxTimeout = flag.Duration("max-timeout", 5*time.Minute, "cap on requested per-job budgets")
		grace      = flag.Duration("grace", 10*time.Second, "shutdown drain grace period")
		stall      = flag.Duration("stall-timeout", 2*time.Minute, "kill a run with no engine progress for this long (0 disables)")
		retries    = flag.Int("retries", 1, "retries of panicked/stalled jobs, degrading the engine (0 disables)")
		backoff    = flag.Duration("retry-backoff", 100*time.Millisecond, "backoff before the first retry (doubled per attempt)")
		certifyRes = flag.Bool("certify", true, "independently re-check decisive results before serving them")
		reuseOn    = flag.Bool("reuse", false, "seed new jobs from prior certified proofs of near-identical systems")
		cacheDir   = flag.String("cache-dir", "", "persist reuse certificates in this directory (implies -reuse)")
		reuseDist  = flag.Float64("reuse-dist", 0, "structural-diff distance threshold for certificate reuse (0 = 0.25)")
		quotaSpec  = flag.String("quotas", "", "per-tenant quotas, name:rate[:burst[:priority]] comma-separated")
		quotaRate  = flag.Float64("quota-rate", 0, "default tenant admission rate in jobs/second (0 = unlimited)")
		quotaBurst = flag.Int("quota-burst", 0, "default tenant burst allowance (0 = max(1, rate))")
		shedMargin = flag.Duration("shed-margin", 10*time.Millisecond, "shed queued jobs whose remaining budget is below this (0 disables)")
		brownout   = flag.Duration("brownout-after", 2*time.Second, "sustained-pressure window per brownout escalation step (0 disables)")
		brkThresh  = flag.Int("breaker-threshold", 5, "consecutive engine failures that open its circuit breaker (0 disables)")
		brkCool    = flag.Duration("breaker-cooldown", 30*time.Second, "breaker cooldown before a half-open probe")
		verbose    = flag.Bool("v", false, "log every job state change")
	)
	flag.Parse()

	quotas, err := parseQuotas(*quotaSpec)
	if err != nil {
		log.Fatalf("icpserve: %v", err)
	}

	// In Config zero means "use the default", so flag-level zeros (an
	// explicit opt-out) map to the negative disable values.
	stallTimeout := *stall
	if stallTimeout == 0 {
		stallTimeout = -1
	}
	maxRetries := *retries
	if maxRetries == 0 {
		maxRetries = -1
	}
	shed := *shedMargin
	if shed == 0 {
		shed = -1
	}
	brownoutAfter := *brownout
	if brownoutAfter == 0 {
		brownoutAfter = -1
	}
	breakerThreshold := *brkThresh
	if breakerThreshold == 0 {
		breakerThreshold = -1
	}
	cfg := service.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		CacheSize:      *cacheSize,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		StallTimeout:   stallTimeout,
		MaxRetries:     maxRetries,
		RetryBackoff:   *backoff,
		SkipCertify:    !*certifyRes,
		Reuse:          *reuseOn || *cacheDir != "",
		CacheDir:       *cacheDir,
		ReuseMaxDist:   *reuseDist,
		TenantQuota:    service.Quota{Rate: *quotaRate, Burst: *quotaBurst},
		TenantQuotas:   quotas,
		ShedMargin:     shed,
		BrownoutAfter:  brownoutAfter,

		BreakerThreshold: breakerThreshold,
		BreakerCooldown:  *brkCool,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	svc := service.New(cfg)

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	reuseNote := "off"
	if cfg.Reuse {
		reuseNote = "on"
		if cfg.CacheDir != "" {
			reuseNote = "on, persisted in " + cfg.CacheDir
		}
	}
	log.Printf("icpserve: listening on %s (%d workers, cache %d, reuse %s)", *addr, cfg.Workers, *cacheSize, reuseNote)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("icpserve: %v, draining (grace %v)", sig, *grace)
	case err := <-errc:
		log.Fatalf("icpserve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	srv.Shutdown(ctx)
	if err := svc.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("icpserve: shutdown: %v", err)
	} else if errors.Is(err, context.DeadlineExceeded) {
		log.Printf("icpserve: grace expired, in-flight jobs cancelled")
	}
	log.Printf("icpserve: final metrics:\n%s", svc.Metrics())
}

// parseQuotas parses "alice:5:10,batch:2:2:1" (the cmd/icploadgen
// -tenants syntax, minus the quota-less rotation entries) into the
// per-tenant quota map.
func parseQuotas(spec string) (map[string]service.Quota, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	quotas := make(map[string]service.Quota)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 2 || len(fields) > 4 || fields[0] == "" {
			return nil, fmt.Errorf("quota %q: want name:rate[:burst[:priority]]", part)
		}
		var q service.Quota
		var err error
		if fields[1] != "" {
			if q.Rate, err = strconv.ParseFloat(fields[1], 64); err != nil {
				return nil, fmt.Errorf("quota %q: bad rate: %v", part, err)
			}
		}
		if len(fields) > 2 && fields[2] != "" {
			if q.Burst, err = strconv.Atoi(fields[2]); err != nil {
				return nil, fmt.Errorf("quota %q: bad burst: %v", part, err)
			}
		}
		if len(fields) > 3 && fields[3] != "" {
			if q.Priority, err = strconv.Atoi(fields[3]); err != nil {
				return nil, fmt.Errorf("quota %q: bad priority: %v", part, err)
			}
		}
		quotas[fields[0]] = q
	}
	return quotas, nil
}
