// Command icpverify model-checks a transition-system model file.
//
// Usage:
//
//	icpverify [flags] model.ts
//
// The model format (see internal/ts):
//
//	system decay
//	var x : real [0, 10]
//	init x >= 0 and x <= 6
//	trans x' = x / 2
//	prop x <= 8
//
// Engines: ic3 (default, proves and refutes), bmc (refutes only),
// kind (k-induction), all (runs every engine and reports each verdict).
//
// Exit codes (scriptable):
//
//	0  safe     — the property was proved
//	1  unsafe   — a validated counterexample was found
//	2  unknown  — undecided within the budget (timeout or bound reached)
//	3  usage or parse error
//
// With -engine all, unsafe takes precedence over safe, which takes
// precedence over unknown.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"icpic3/internal/bmc"
	"icpic3/internal/certify"
	"icpic3/internal/engine"
	"icpic3/internal/ic3icp"
	"icpic3/internal/icp"
	"icpic3/internal/kind"
	"icpic3/internal/portfolio"
	"icpic3/internal/ts"
)

func main() {
	var (
		engineName = flag.String("engine", "ic3", "engine: ic3 | bmc | kind | portfolio | all")
		timeout    = flag.Duration("timeout", 60*time.Second, "per-engine wall-clock budget")
		eps        = flag.Float64("eps", 1e-5, "minimum splitting width of the ICP solver")
		depth      = flag.Int("depth", 128, "maximum BMC unrolling depth")
		maxK       = flag.Int("k", 24, "maximum k-induction depth")
		gen        = flag.String("gen", "core+widen", "IC3 generalization: none | core | core+widen")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "goroutines for IC3's parallel clause pushing (1 = sequential)")
		showTrace  = flag.Bool("trace", true, "print counterexample traces")
		showInv    = flag.Bool("invariant", false, "print the inductive invariant (ic3, safe)")
		witnessOut = flag.String("witness", "", "write a JSON witness to this file")
		doCertify  = flag.Bool("certify", false, "independently re-check decisive verdicts (Safe certificates, Unsafe traces)")
	)
	// ContinueOnError so flag errors exit 3 (usage), not the flag
	// package's default 2, which would collide with "unknown verdict".
	flag.CommandLine.Init("icpverify", flag.ContinueOnError)
	if err := flag.CommandLine.Parse(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		os.Exit(3)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: icpverify [flags] model.ts")
		flag.PrintDefaults()
		os.Exit(3)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail("read: %v", err)
	}
	sys, err := ts.Parse(string(src))
	if err != nil {
		fail("parse: %v", err)
	}

	genMode, err := parseGen(*gen)
	if err != nil {
		fail("%v", err)
	}

	var lastInvariant []string
	engines := map[string]func() engine.Result{
		"ic3": func() engine.Result {
			res, info := ic3icp.CheckFull(sys, ic3icp.Options{
				Solver:     icp.Options{Eps: *eps},
				Generalize: genMode, GeneralizeSet: true,
				Workers: *workers,
				Budget:  engine.Budget{Timeout: *timeout},
			})
			lastInvariant = nil
			for _, c := range info.Invariant {
				lastInvariant = append(lastInvariant, c.String())
			}
			if *showInv && res.Verdict == engine.Safe {
				fmt.Println("inductive invariant (negated blocked cubes, conjoined with prop):")
				for _, c := range info.Invariant {
					fmt.Printf("  !(%s)\n", c)
				}
			}
			return res
		},
		"bmc": func() engine.Result {
			return bmc.Check(sys, bmc.Options{
				MaxDepth: *depth,
				Solver:   icp.Options{Eps: *eps},
				Budget:   engine.Budget{Timeout: *timeout},
			})
		},
		"kind": func() engine.Result {
			return kind.Check(sys, kind.Options{
				MaxK:   *maxK,
				Solver: icp.Options{Eps: *eps},
				Budget: engine.Budget{Timeout: *timeout},
			})
		},
		"portfolio": func() engine.Result {
			return portfolio.Check(sys, portfolio.Options{
				IC3:        ic3icp.Options{Solver: icp.Options{Eps: *eps}, Generalize: genMode, GeneralizeSet: true, Workers: *workers},
				BMC:        bmc.Options{MaxDepth: *depth, Solver: icp.Options{Eps: *eps}},
				KInduction: kind.Options{MaxK: *maxK, Solver: icp.Options{Eps: *eps}},
				Budget:     engine.Budget{Timeout: *timeout},
			})
		},
	}

	names := []string{*engineName}
	if *engineName == "all" {
		names = []string{"ic3", "bmc", "kind"}
	}
	sawSafe, sawUnsafe := false, false
	for _, n := range names {
		run, ok := engines[n]
		if !ok {
			fail("unknown engine %q", n)
		}
		// Guard converts an engine panic into an Unknown verdict (exit 2)
		// with the panic in the note, instead of a crash (exit 3-ish).
		res := engine.Guard(n, func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}, run)
		if *doCertify && res.Verdict != engine.Unknown {
			err := certify.Check(sys, res, certify.Options{
				Eps:    *eps,
				Budget: engine.Budget{Timeout: *timeout},
			})
			if err != nil {
				fmt.Printf("[%s] CERTIFICATION FAILED, demoting %s to unknown: %v\n", n, res.Verdict, err)
				res.Verdict = engine.Unknown
				res.Note = fmt.Sprintf("certification failed: %v", err)
			} else {
				fmt.Printf("[%s] %s verdict independently certified\n", n, res.Verdict)
			}
		}
		fmt.Printf("[%s] %s: %s (depth %d, %v)\n", n, sys.Name, res.Verdict, res.Depth,
			res.Runtime.Round(time.Millisecond))
		if res.Note != "" {
			fmt.Printf("[%s] note: %s\n", n, res.Note)
		}
		if res.Verdict == engine.Unsafe && *showTrace {
			printTrace(sys, res.Trace)
		}
		switch res.Verdict {
		case engine.Safe:
			sawSafe = true
		case engine.Unsafe:
			sawUnsafe = true
		}
		if *witnessOut != "" {
			w := engine.NewWitness(sys.Name, res, lastInvariant)
			f, err := os.Create(*witnessOut)
			if err != nil {
				fail("witness: %v", err)
			}
			if err := w.WriteJSON(f); err != nil {
				fail("witness: %v", err)
			}
			f.Close()
			fmt.Printf("[%s] witness written to %s\n", n, *witnessOut)
		}
	}
	switch {
	case sawUnsafe:
		os.Exit(1)
	case sawSafe:
		os.Exit(0)
	default:
		os.Exit(2)
	}
}

func parseGen(s string) (ic3icp.GenMode, error) {
	switch s {
	case "none":
		return ic3icp.GenNone, nil
	case "core":
		return ic3icp.GenCore, nil
	case "core+widen", "widen":
		return ic3icp.GenCoreWiden, nil
	}
	return 0, fmt.Errorf("unknown generalization mode %q", s)
}

func printTrace(sys *ts.System, trace []ts.State) {
	vars := make([]string, 0, len(sys.Vars))
	for _, v := range sys.Vars {
		vars = append(vars, v.Name)
	}
	sort.Strings(vars)
	for i, st := range trace {
		fmt.Printf("  step %2d:", i)
		for _, v := range vars {
			fmt.Printf(" %s=%g", v, st[v])
		}
		fmt.Println()
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "icpverify: "+format+"\n", args...)
	os.Exit(3)
}
