// Command benchtab regenerates the tables and figures of the evaluation
// (DESIGN.md §5 / EXPERIMENTS.md) from the synthetic benchmark suite.
//
// Usage:
//
//	benchtab -all                 # everything (the full report)
//	benchtab -table 2 -budget 10s # just Table II with a 10s per-run budget
//	benchtab -fig 1               # just the cactus plot series
//	benchtab -json                # baseline-vs-parallel BENCH_<date>.json
//	benchtab -reuse               # certificate-reuse resubmission workload
//
// -workers bounds the suite-level worker pool (0 = GOMAXPROCS); record
// order and verdicts do not depend on it, only wall-clock does.
// -procs pins GOMAXPROCS for the whole run (0 = NumCPU), overriding the
// environment, so perf snapshots measure the machine and not whatever
// GOMAXPROCS the invoking shell happened to export; every text report
// and BENCH_<date>.json records the value in force.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"icpic3/internal/benchmarks"
	"icpic3/internal/engine"
	"icpic3/internal/harness"
)

func main() {
	var (
		all     = flag.Bool("all", false, "produce the full report")
		table   = flag.Int("table", 0, "table to produce (1-4)")
		fig     = flag.Int("fig", 0, "figure to produce (1-4)")
		budget  = flag.Duration("budget", 20*time.Second, "per-run budget")
		size    = flag.Int("size", 3, "instances per family and polarity")
		csvOut  = flag.Bool("csv", false, "emit CSV instead of text (tables 2, figures 2-3)")
		jsonOut = flag.Bool("json", false, "run the suite at workers=1 and workers=N and write BENCH_<date>.json")
		outFile = flag.String("o", "", "output file for -json (default BENCH_<date>.json)")
		workers = flag.Int("workers", 0, "suite-level worker pool (0 = GOMAXPROCS, 1 = sequential)")
		procs   = flag.Int("procs", 0, "GOMAXPROCS for the run (0 = NumCPU; overrides the environment)")
		reuseWL = flag.Bool("reuse", false, "run the certificate-reuse resubmission workload; exit 1 on a verdict mismatch or a missed lookup")
	)
	flag.Parse()

	if *procs <= 0 {
		*procs = runtime.NumCPU()
	}
	runtime.GOMAXPROCS(*procs)

	w := os.Stdout
	if *reuseWL {
		suite, err := benchmarks.Suite(*size)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep, err := harness.ReuseBench(suite, *budget)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintln(w, harness.RunConfigLine(*workers))
		harness.WriteReuseReport(w, rep)
		if rep.Mismatches > 0 || rep.Hits < rep.Proved {
			fmt.Fprintln(os.Stderr, "benchtab: reuse workload failed (verdict mismatch or missed lookup)")
			os.Exit(1)
		}
		return
	}
	if *jsonOut {
		date := time.Now().Format("2006-01-02")
		rep, err := harness.BenchJSON(*size, *budget, *workers, date)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		path := *outFile
		if path == "" {
			path = fmt.Sprintf("BENCH_%s.json", date)
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s (gomaxprocs %d, baseline %.2fs, parallel %.2fs @ %d workers, speedup %.2fx)\n",
			path, rep.GoMaxProcs, rep.Baseline.WallSec, rep.Parallel.WallSec, rep.Parallel.Workers, rep.SpeedupX)
		return
	}
	if *all {
		if err := harness.ReportWorkers(w, *size, *budget, *workers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	suite, err := benchmarks.Suite(*size)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	engines := harness.Engines()
	names := harness.EngineNames()

	if (*table != 0 || *fig != 0) && !*csvOut {
		fmt.Fprintln(w, harness.RunConfigLine(*workers))
	}
	switch {
	case *table == 1:
		harness.Table1(w, suite)
	case *table == 2:
		records := harness.RunSuiteWorkers(suite, engines, names, *budget, *workers)
		if *csvOut {
			if err := harness.WriteSummaryCSV(w, records, names); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		harness.Table2(w, records, names)
	case *table == 3:
		safe := filter(suite, func(in benchmarks.Instance) bool {
			return in.Expected == engine.Safe && !in.Hard
		})
		harness.Table3(w, harness.RunAblationWorkers(safe, *budget, *workers))
	case *table == 4:
		harness.Table4(w, harness.RunCircuits(benchmarks.Circuits(), 128))
	case *fig == 1:
		harness.Fig1(w, harness.RunSuiteWorkers(suite, engines, names, *budget, *workers), names)
	case *fig == 2:
		records := harness.RunSuiteWorkers(suite, engines, names, *budget, *workers)
		if *csvOut {
			if err := harness.WriteScatterCSV(w, records, "ic3-icp", "bmc-icp", budget.Seconds()); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		harness.Fig2(w, records, "ic3-icp", "bmc-icp", budget.Seconds())
	case *fig == 3:
		small := filter(suite, func(in benchmarks.Instance) bool {
			return in.Family == "poly" || in.Family == "logistic"
		})
		points := harness.EpsSweepWorkers(small, []float64{1e-2, 1e-3, 1e-4, 1e-5, 1e-6}, *budget, *workers)
		if *csvOut {
			if err := harness.WriteEpsCSV(w, points); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		harness.Fig3(w, points)
	case *fig == 4:
		vehicles := filter(suite, func(in benchmarks.Instance) bool { return in.Family == "vehicle" })
		harness.Fig4(w, harness.FrameGrowthWorkers(vehicles, *budget, *workers))
	default:
		fmt.Fprintln(os.Stderr, "benchtab: pass -all, -table N or -fig N")
		flag.PrintDefaults()
		os.Exit(2)
	}
}

func filter(in []benchmarks.Instance, keep func(benchmarks.Instance) bool) []benchmarks.Instance {
	var out []benchmarks.Instance
	for _, i := range in {
		if keep(i) {
			out = append(out, i)
		}
	}
	return out
}
