package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"icpic3/internal/analysis"
)

// TestViolationFailsRun is the fixture-backed proof behind the CI
// wiring: introducing a violation makes icplint (and hence `make
// lint` / `make check`) exit nonzero.
func TestViolationFailsRun(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"./testdata/src/bad/internal/icp"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "[detrange]") {
		t.Fatalf("output missing detrange finding:\n%s", out.String())
	}
}

func TestCleanRunExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"./testdata/src/clean/internal/icp"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if strings.Contains(out.String(), "finding") {
		t.Fatalf("clean run reported findings:\n%s", out.String())
	}
}

// TestPragmaAllowsFinding checks the //lint:allow escape: the finding
// is suppressed, summarized, and does not fail the run.
func TestPragmaAllowsFinding(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"./testdata/src/allowed/internal/icp"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "pragma-allowed findings: detrange=1") {
		t.Fatalf("output missing pragma summary:\n%s", out.String())
	}
}

// TestStalePragmaFailsRun checks pragma hygiene: a pragma suppressing
// nothing is itself a finding.
func TestStalePragmaFailsRun(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"./testdata/src/stale/internal/icp"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "[pragma]") || !strings.Contains(out.String(), "unused //lint:allow") {
		t.Fatalf("output missing stale-pragma finding:\n%s", out.String())
	}
}

// TestJSONOutput checks the machine-readable shape: file, line, col,
// analyzer, message, and per-analyzer counts.
func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "./testdata/src/bad/internal/icp"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, errb.String())
	}
	var rep analysis.JSONReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %d, want 1: %+v", len(rep.Findings), rep.Findings)
	}
	f := rep.Findings[0]
	if f.Analyzer != "detrange" || f.Line == 0 || f.Col == 0 || f.File == "" || f.Message == "" {
		t.Fatalf("incomplete finding: %+v", f)
	}
	if rep.Counts["detrange"] != 1 {
		t.Fatalf("counts = %v, want detrange=1", rep.Counts)
	}
}

func TestAnalyzerSelection(t *testing.T) {
	var out, errb bytes.Buffer
	// only roundcheck selected: the detrange violation must pass through
	code := run([]string{"-analyzers", "roundcheck", "./testdata/src/bad/internal/icp"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if code := run([]string{"-analyzers", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("unknown analyzer: exit = %d, want 2", code)
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"roundcheck", "detrange", "budgetloop", "guardgo", "resulterr"} {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("-list output missing %s:\n%s", name, out.String())
		}
	}
}
