// Driver fixture with a stale pragma suppressing nothing: pragma
// hygiene failures must fail the run like real findings.
package icp

// Sum iterates a slice.
func Sum(xs []int) int {
	total := 0
	//lint:allow detrange this loop ranges a slice, so the pragma is dead
	for _, v := range xs {
		total += v
	}
	return total
}
