// Driver fixture with no violations.
package icp

// Sum iterates a slice; nothing here is icplint's business.
func Sum(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}
