// Driver fixture whose violation carries a justified pragma: icplint
// reports it in the summary but exits 0.
package icp

// Count only accumulates a commutative total, so iteration order is
// irrelevant.
func Count(m map[string]int) int {
	total := 0
	//lint:allow detrange commutative accumulation; order cannot affect the result
	for _, v := range m {
		total += v
	}
	return total
}
