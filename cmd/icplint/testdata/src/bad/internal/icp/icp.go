// Driver fixture with a genuine detrange violation: proves the
// icplint exit path fails the build when a violation is introduced.
package icp

// Sum iterates a map in nondeterministic order.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
