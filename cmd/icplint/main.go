// icplint is the repo's invariant linter: a multichecker driving the
// internal/analysis suite over any set of package patterns.  It exits
// nonzero on any finding not suppressed by a //lint:allow pragma, so
// `make lint` (and CI) turn soundness, determinism, and supervision
// violations into build failures.
//
// Usage:
//
//	icplint [-json|-sarif] [-analyzers a,b,...] [packages]
//
// With no packages, ./... is linted.  -json emits a machine-readable
// report (file, line, col, analyzer, message) mirroring bench-json, so
// finding counts can be diffed across PRs.  -sarif emits a SARIF 2.1.0
// log with pragma-allowed findings marked as in-source suppressions,
// for CI annotation surfaces.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"icpic3/internal/analysis"
	"icpic3/internal/analysis/budgetloop"
	"icpic3/internal/analysis/detrange"
	"icpic3/internal/analysis/guardgo"
	"icpic3/internal/analysis/lockguard"
	"icpic3/internal/analysis/releasetrack"
	"icpic3/internal/analysis/resulterr"
	"icpic3/internal/analysis/roundcheck"
	"icpic3/internal/analysis/scratchalias"
	"icpic3/internal/analysis/submitblock"
)

// suite is the full analyzer set, in report order.
var suite = []*analysis.Analyzer{
	roundcheck.Analyzer,
	detrange.Analyzer,
	budgetloop.Analyzer,
	guardgo.Analyzer,
	resulterr.Analyzer,
	submitblock.Analyzer,
	lockguard.Analyzer,
	releasetrack.Analyzer,
	scratchalias.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("icplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	sarifOut := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "icplint: -json and -sarif are mutually exclusive")
		return 2
	}
	analyzers, err := selectAnalyzers(*names)
	if err != nil {
		fmt.Fprintf(stderr, "icplint: %v\n", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "icplint: %v\n", err)
		return 2
	}
	pkgs, err := analysis.LoadPackages(dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "icplint: %v\n", err)
		return 2
	}
	findings, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "icplint: %v\n", err)
		return 2
	}
	switch {
	case *jsonOut:
		if err := analysis.WriteJSON(stdout, dir, findings); err != nil {
			fmt.Fprintf(stderr, "icplint: %v\n", err)
			return 2
		}
	case *sarifOut:
		if err := analysis.WriteSARIF(stdout, dir, analyzers, findings); err != nil {
			fmt.Fprintf(stderr, "icplint: %v\n", err)
			return 2
		}
	default:
		analysis.WriteText(stdout, dir, findings)
	}
	if analysis.Failing(findings) > 0 {
		return 1
	}
	return 0
}

func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return suite, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
