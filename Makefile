# Standard checks for the icpic3 repo.  `make check` is what CI should
# run: build, vet, the full test suite, and the race detector over the
# concurrency-heavy packages.

GO ?= go

.PHONY: all build test test-race vet check fuzz-short clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector over everything is slow; focus it on the packages
# with real concurrency (service, portfolio, harness) plus their
# substrate.  Add packages here when they grow goroutines.
test-race:
	$(GO) test -race ./internal/service/... ./internal/portfolio/... ./internal/engine/... ./internal/certify/...

vet:
	$(GO) vet ./...

# Short native-fuzzing smoke: each target gets a few seconds.  `go test`
# allows one -fuzz pattern per invocation, hence one line per target.
fuzz-short:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=5s ./internal/expr/
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=5s ./internal/ts/
	$(GO) test -run='^$$' -fuzz=FuzzSystem -fuzztime=5s ./internal/ts/

check: build vet test test-race

clean:
	$(GO) clean ./...
