# Standard checks for the icpic3 repo.  `make check` is what CI should
# run: build, vet, icplint, the full test suite, and the race detector
# over the concurrency-heavy packages.

GO ?= go

.PHONY: all build test test-race vet lint lint-json lint-sarif check fuzz-short bench-json bench-diff bench-smoke reuse-smoke load-smoke clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector over everything is slow; focus it on the packages
# with real concurrency (service, portfolio, harness, the solver pool)
# plus their substrate.  Add packages here when they grow goroutines.
# The ic3icp line targets just the parallel-pushing suites — the rest of
# that package is sequential and slow under -race.
test-race:
	$(GO) test -race ./internal/service/... ./internal/portfolio/... ./internal/engine/... ./internal/certify/... ./internal/harness/... ./internal/icp/...
	$(GO) test -race -run 'Parallel|Determinism|Pool' ./internal/ic3icp/

# Machine-readable perf snapshot: runs the suite at workers=1 and
# workers=GOMAXPROCS and writes BENCH_<date>.json (see EXPERIMENTS.md).
# benchtab pins GOMAXPROCS=NumCPU itself (-procs 0), overriding whatever
# the environment exports, and records procs+workers in the JSON.
bench-json:
	$(GO) run ./cmd/benchtab -json -size 2 -budget 10s

# Compare two BENCH_<date>.json snapshots; exits 1 on a regression
# (fewer solved, new wrong verdicts, or a per-engine solved/sec drop
# beyond the tolerance).  Usage: make bench-diff OLD=BENCH_a.json NEW=BENCH_b.json
bench-diff:
	$(GO) run ./cmd/benchdiff $(OLD) $(NEW)

# Fast perf/soundness smoke for CI: single-iteration benchmarks of the
# two hot paths, the reduceDB invariance legs (verdicts must match with
# clause deletion off vs forced aggressive — see reduce_test.go and
# trigger_test.go), and the query-count gate: the committed snapshots
# pin the triggered-pushing work profile, so benchdiff fails if solver
# queries regress more than 10% against the post-trigger snapshot or
# any verdict changes.
bench-smoke:
	$(GO) test -run '^$$' -bench 'SolverICP' -benchtime=1x -benchmem .
	$(GO) test -run '^$$' -bench 'PropagateWatched' -benchtime=1x -benchmem ./internal/icp/
	$(GO) test -run '^$$' -bench 'PropQuery' -benchtime=1x -benchmem ./internal/ic3icp/
	$(GO) test -run 'TestReduceDBVerdictInvariance|TestTriggeredPushReduceInvariance|TestRetentionInvariance' -count=1 -v ./internal/ic3icp/
	$(GO) run ./cmd/benchdiff -queries-tolerance 0.10 BENCH_2026-08-08.json BENCH_2026-08-08-triggered.json
	$(GO) run ./cmd/benchdiff -queries-tolerance 0.10 BENCH_2026-08-08-triggered.json BENCH_2026-08-08-retained.json

# Certificate-reuse smoke (DESIGN.md §13): prove a tiny corpus, mutate
# one bound per instance, re-verify seeded from the stored certificate —
# benchtab exits 1 unless every lookup hits and every seeded verdict
# matches the cold run.  The service tests drive the same path through
# icpserve's -reuse wiring (store, metrics, persistence).
reuse-smoke:
	$(GO) run ./cmd/benchtab -reuse -size 1 -budget 5s
	$(GO) test -run 'TestReuse' -count=1 ./internal/service/

# Overload smoke (DESIGN.md §14): drive the in-process service, pinned
# to one worker and a short queue, through a ramp several times past
# capacity with mixed long/short budgets and a rate-limited tenant.
# icploadgen exits 1 on any wrong verdict, any stuck job, no observed
# pushback (-expect-overload), or a total p99 above the bound — under
# overload the service must reject and shed, never serve a wrong
# verdict or let tail latency grow without bound.
load-smoke:
	$(GO) run ./cmd/icploadgen -workers 1 -queue 8 -suite 1 \
		-stages 10x1s,50x2s -timeout 300ms -short-timeout 50ms -short-every 3 \
		-tenants free,limited:2:2 -expect-overload -max-p99 15s

vet:
	$(GO) vet ./...

# Project-specific analyzers (soundness, determinism, supervision
# invariants — see DESIGN.md §11).  Exits nonzero on any finding.
lint:
	$(GO) run ./cmd/icplint ./...

# Machine-readable findings, mirroring bench-json: one JSON object with
# per-finding file/line/analyzer/message plus per-analyzer counts.
lint-json:
	$(GO) run ./cmd/icplint -json ./...

# SARIF 2.1.0 log for CI annotation surfaces; pragma-allowed findings
# become in-source suppressions.  Written to icplint.sarif.
lint-sarif:
	$(GO) run ./cmd/icplint -sarif ./... > icplint.sarif || true
	@test -s icplint.sarif

# Short native-fuzzing smoke: each target gets a few seconds.  `go test`
# allows one -fuzz pattern per invocation, hence one line per target.
fuzz-short:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=5s ./internal/expr/
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=5s ./internal/ts/
	$(GO) test -run='^$$' -fuzz=FuzzSystem -fuzztime=5s ./internal/ts/
	$(GO) test -run='^$$' -fuzz=FuzzSolveRetentionEquiv -fuzztime=5s ./internal/icp/

check: build vet lint test test-race

clean:
	$(GO) clean ./...
