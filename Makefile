# Standard checks for the icpic3 repo.  `make check` is what CI should
# run: build, vet, the full test suite, and the race detector over the
# concurrency-heavy packages.

GO ?= go

.PHONY: all build test test-race vet check clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector over everything is slow; focus it on the packages
# with real concurrency (service, portfolio, harness) plus their
# substrate.  Add packages here when they grow goroutines.
test-race:
	$(GO) test -race ./internal/service/... ./internal/portfolio/... ./internal/engine/...

vet:
	$(GO) vet ./...

check: build vet test test-race

clean:
	$(GO) clean ./...
