// icpic3 is deliberately dependency-free: the static-analysis suite
// (internal/analysis, cmd/icplint) reimplements the needed slice of
// golang.org/x/tools/go/analysis on the standard library — targets are
// type-checked from source, dependency types come from `go list
// -export` export data — so a clean checkout builds, tests, and lints
// fully offline with no module downloads.  Before adding a require
// here, check internal/analysis for the pattern that avoided it.
module icpic3

go 1.22
