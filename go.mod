module icpic3

go 1.22
