// Lemma: the headline separation between IC3-ICP and bounded methods.
//
// A constant disturbance y (y' = y) is integrated into x (x' = x + y).
// The initial condition pins y to 0, so x never moves — but proving
// "x <= 5" requires the LEMMA "y <= 0", which no bounded unrolling can
// derive: k-induction fails at every k (a chain starting at x = 5-k*0.1,
// y = 0.1 satisfies the property for k steps and then violates it), and
// BMC cannot prove safety at all.  IC3-ICP discovers the lemma as a
// self-inductive interval clause within milliseconds.
//
//	go run ./examples/lemma
package main

import (
	"fmt"
	"log"
	"time"

	"icpic3"
)

const model = `
system frozen
var x : real [0, 100]
var y : real [0, 1]
init x >= 0 and x <= 1 and y = 0
trans x' = x + y and y' = y
prop x <= 5
`

func main() {
	sys, err := icpic3.ParseSystem(model)
	if err != nil {
		log.Fatal(err)
	}
	budget := icpic3.Budget{Timeout: 30 * time.Second}

	fmt.Println("system:")
	fmt.Print(model)
	fmt.Println()

	res, info := icpic3.CheckIC3Full(sys, icpic3.IC3Options{Budget: budget})
	fmt.Printf("ic3-icp : %-8s in %v\n", res.Verdict, res.Runtime.Round(time.Millisecond))
	if res.Verdict == icpic3.Safe {
		fmt.Println("  learned lemmas (blocked cubes):")
		for _, cube := range info.Invariant {
			fmt.Printf("    not(%s)\n", cube)
		}
	}

	kres := icpic3.CheckKInduction(sys, icpic3.KInductionOptions{MaxK: 24, Budget: budget})
	fmt.Printf("kind-icp: %-8s (%s)\n", kres.Verdict, kres.Note)

	bres := icpic3.CheckBMC(sys, icpic3.BMCOptions{MaxDepth: 64, Budget: budget})
	fmt.Printf("bmc-icp : %-8s (%s)\n", bres.Verdict, bres.Note)

	// The portfolio inherits IC3's strength.
	pres := icpic3.CheckPortfolio(sys, icpic3.PortfolioOptions{Budget: budget})
	fmt.Printf("portfolio: %-7s (%s)\n", pres.Verdict, pres.Note)
}
