// Quickstart: verify a tiny non-linear system with all three engines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"icpic3"
)

func main() {
	// A decaying quantity with a quadratic perturbation.  From any start
	// in [0, 6], x' = x/2 + x²/100 stays below 8: the property is safe,
	// and IC3 proves it with an interval-box invariant.
	sys, err := icpic3.ParseSystem(`
system quickstart
var x : real [0, 10]
init x >= 0 and x <= 6
trans x' = x / 2 + x^2 / 100
prop x <= 8
`)
	if err != nil {
		log.Fatal(err)
	}

	budget := icpic3.Budget{Timeout: 30 * time.Second}

	res, info := icpic3.CheckIC3Full(sys, icpic3.IC3Options{Budget: budget})
	fmt.Printf("ic3-icp : %-8s depth=%d  time=%v\n", res.Verdict, res.Depth,
		res.Runtime.Round(time.Millisecond))
	if res.Verdict == icpic3.Safe {
		fmt.Println("  inductive invariant = prop AND the negation of:")
		for _, cube := range info.Invariant {
			fmt.Printf("    %s\n", cube)
		}
	}

	bres := icpic3.CheckBMC(sys, icpic3.BMCOptions{MaxDepth: 50, Budget: budget})
	fmt.Printf("bmc-icp : %-8s depth=%d  (%s)\n", bres.Verdict, bres.Depth, bres.Note)

	kres := icpic3.CheckKInduction(sys, icpic3.KInductionOptions{MaxK: 10, Budget: budget})
	fmt.Printf("kind-icp: %-8s k=%d\n", kres.Verdict, kres.Depth)

	// Now break the property: a stronger perturbation pushes x above the
	// bound, and the engines find a concrete, replayable counterexample.
	unsafe, err := icpic3.ParseSystem(`
system quickstart_unsafe
var x : real [0, 40]
init x >= 5 and x <= 6
trans x' = x / 2 + x^2 / 10
prop x <= 20
`)
	if err != nil {
		log.Fatal(err)
	}
	ures := icpic3.CheckIC3(unsafe, icpic3.IC3Options{Budget: budget})
	fmt.Printf("\nunsafe variant: %s (trace length %d)\n", ures.Verdict, len(ures.Trace))
	for i, st := range ures.Trace {
		fmt.Printf("  step %d: x=%.4f\n", i, st["x"])
	}
}
