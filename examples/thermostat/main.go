// Thermostat: a hybrid two-mode heater with non-linear cooling, verified
// with all three engines; the unsafe variant produces a concrete trace.
//
//	go run ./examples/thermostat
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"icpic3"
)

const safeModel = `
system thermostat
var T : real [0, 50]
var on : bool
init T >= 20 and T <= 22 and on
trans (on -> T' = T + 0.5 * (30 - T)) and \
      (!on -> T' = T - 0.25 * T) and \
      (on' <-> T' <= 25)
prop T <= 32
`

const unsafeModel = `
system hotstat
var T : real [0, 80]
var on : bool
init T >= 20 and T <= 22 and on
trans (on -> T' = T + 0.5 * (70 - T)) and \
      (!on -> T' = T - 0.25 * T) and \
      (on' <-> T' <= 60)
prop T <= 40
`

func main() {
	budget := icpic3.Budget{Timeout: 60 * time.Second}

	fmt.Println("=== safe thermostat (heater limited to 30°) ===")
	sys, err := icpic3.ParseSystem(safeModel)
	if err != nil {
		log.Fatal(err)
	}
	runAll(sys, budget)

	fmt.Println()
	fmt.Println("=== unsafe thermostat (heater pushes to 70°) ===")
	hot, err := icpic3.ParseSystem(unsafeModel)
	if err != nil {
		log.Fatal(err)
	}
	runAll(hot, budget)
}

func runAll(sys *icpic3.System, budget icpic3.Budget) {
	res := icpic3.CheckIC3(sys, icpic3.IC3Options{Budget: budget})
	report("ic3-icp", sys, res)
	res = icpic3.CheckBMC(sys, icpic3.BMCOptions{MaxDepth: 64, Budget: budget})
	report("bmc-icp", sys, res)
	res = icpic3.CheckKInduction(sys, icpic3.KInductionOptions{MaxK: 12, Budget: budget})
	report("kind-icp", sys, res)
}

func report(name string, sys *icpic3.System, res icpic3.Result) {
	fmt.Printf("%-8s: %-8s depth=%-3d time=%v\n", name, res.Verdict, res.Depth,
		res.Runtime.Round(time.Millisecond))
	if res.Verdict == icpic3.Unsafe {
		var vars []string
		for _, v := range sys.Vars {
			vars = append(vars, v.Name)
		}
		sort.Strings(vars)
		for i, st := range res.Trace {
			fmt.Printf("    step %d:", i)
			for _, v := range vars {
				fmt.Printf(" %s=%.3f", v, st[v])
			}
			fmt.Println()
		}
	}
}
