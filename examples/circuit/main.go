// Circuit: Boolean IC3/PDR on hand-built and-inverter graphs, contrasted
// with SAT-based BMC — the Boolean anchor of the evaluation.
//
//	go run ./examples/circuit
package main

import (
	"fmt"
	"log"
	"time"

	"icpic3"
)

func main() {
	// A 5-bit counter that increments every cycle; the bad output fires at
	// value 21, so the design is unsafe at depth 21.
	counter := buildCounter(5, 21)

	res := icpic3.CheckCircuit(counter, icpic3.CircuitOptions{})
	fmt.Printf("counter5 (bad at 21): ic3-bool: %s, trace length %d\n",
		res.Verdict, len(res.Trace))

	bres := icpic3.CheckCircuitBMC(counter, 64)
	fmt.Printf("counter5 (bad at 21): bmc-sat : %s at depth %d\n", bres.Verdict, bres.Frames)

	// A safe design: a rotating one-hot ring; the property (no two
	// adjacent bits set) has an inductive invariant which PDR discovers.
	ring := buildRing(8)
	t0 := time.Now()
	rres := icpic3.CheckCircuit(ring, icpic3.CircuitOptions{})
	fmt.Printf("ring8 (one-hot safe): ic3-bool: %s with %d invariant cubes in %v\n",
		rres.Verdict, len(rres.Invariant), time.Since(t0).Round(time.Millisecond))
	if rres.Verdict != icpic3.CircuitSafe {
		log.Fatal("expected safe")
	}

	// BMC can only bound-check the safe design.
	rbres := icpic3.CheckCircuitBMC(ring, 32)
	fmt.Printf("ring8 (one-hot safe): bmc-sat : %s up to depth 32\n", rbres.Verdict)
}

// buildCounter constructs an n-bit incrementing counter whose bad output
// fires at the given value.
func buildCounter(n int, target uint64) *icpic3.Circuit {
	c := icpic3.NewCircuit()
	bits := make([]icpic3.CircuitLit, n)
	for i := range bits {
		bits[i] = c.AddLatch(false)
	}
	carry := icpic3.CircuitTrue
	for i := 0; i < n; i++ {
		c.SetNext(bits[i], c.Xor(bits[i], carry))
		carry = c.And(bits[i], carry)
	}
	bad := icpic3.CircuitTrue
	for i := 0; i < n; i++ {
		if target>>uint(i)&1 == 1 {
			bad = c.And(bad, bits[i])
		} else {
			bad = c.And(bad, bits[i].Not())
		}
	}
	c.SetBad(bad)
	return c
}

// buildRing constructs a rotating one-hot ring with an enable input; bad
// fires if two adjacent bits are ever set simultaneously (never happens).
func buildRing(n int) *icpic3.Circuit {
	c := icpic3.NewCircuit()
	en := c.AddInput()
	bits := make([]icpic3.CircuitLit, n)
	for i := range bits {
		bits[i] = c.AddLatch(i == 0)
	}
	for i := range bits {
		prev := bits[(i+n-1)%n]
		c.SetNext(bits[i], c.Mux(en, prev, bits[i]))
	}
	bad := icpic3.CircuitFalse
	for i := range bits {
		bad = c.Or(bad, c.And(bits[i], bits[(i+1)%n]))
	}
	c.SetBad(bad)
	return c
}
