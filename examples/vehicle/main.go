// Vehicle: longitudinal dynamics with quadratic drag.  Shows how IC3-ICP
// scales with the distance between the property bound and the reachable
// set, and prints the discovered interval invariant.
//
//	go run ./examples/vehicle
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"icpic3"
)

func model(power, bound float64) string {
	return fmt.Sprintf(`
system vehicle
var v : real [0, 60]
init v >= 0 and v <= 1
trans v' = v + 0.5 * (%g - 0.01 * v^2)
prop v <= %g
`, power, bound)
}

func main() {
	budget := icpic3.Budget{Timeout: 60 * time.Second}

	// terminal velocity for power u is sqrt(u / 0.01) = 10*sqrt(u)
	fmt.Println("power  vterm  bound  verdict   frames  time")
	for _, tc := range []struct{ power, bound float64 }{
		{4, 30}, // vterm 20: safe with margin
		{4, 22}, // safe, tighter margin: more frames expected
		{4, 15}, // unsafe: bound below terminal velocity
		{9, 35}, // vterm 30: safe
		{9, 20}, // unsafe
	} {
		sys, err := icpic3.ParseSystem(model(tc.power, tc.bound))
		if err != nil {
			log.Fatal(err)
		}
		res, info := icpic3.CheckIC3Full(sys, icpic3.IC3Options{Budget: budget})
		fmt.Printf("%5g %6.1f %6g  %-8s %6d  %v\n",
			tc.power, 10*math.Sqrt(tc.power), tc.bound, res.Verdict, info.Frames,
			res.Runtime.Round(time.Millisecond))
		if res.Verdict == icpic3.Safe && len(info.Invariant) > 0 {
			fmt.Printf("       invariant: prop AND not(%s)", info.Invariant[0])
			if len(info.Invariant) > 1 {
				fmt.Printf(" ... (%d cubes)", len(info.Invariant))
			}
			fmt.Println()
		}
		if res.Verdict == icpic3.Unsafe {
			last := res.Trace[len(res.Trace)-1]
			fmt.Printf("       cex: %d steps, final v=%.3f\n", len(res.Trace)-1, last["v"])
		}
	}
}
