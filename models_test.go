package icpic3_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"icpic3"
)

// TestModelZoo parses and verifies every model file shipped in models/:
// files whose name contains "unsafe" must yield a validated
// counterexample, the rest must be proved safe (pendulum, a known-hard
// box-invariant case, may stay unknown but must never be wrong).
func TestModelZoo(t *testing.T) {
	files, err := filepath.Glob("models/*.ts")
	if err != nil || len(files) == 0 {
		t.Fatalf("no models found: %v", err)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := icpic3.ParseSystem(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			res := icpic3.CheckPortfolio(sys, icpic3.PortfolioOptions{
				Budget: icpic3.Budget{Timeout: 30 * time.Second},
			})
			unsafe := strings.Contains(f, "unsafe")
			hard := strings.Contains(f, "pendulum")
			switch {
			case unsafe:
				if res.Verdict != icpic3.Unsafe {
					t.Fatalf("verdict = %v (%s), want unsafe", res.Verdict, res.Note)
				}
				if err := sys.ValidateTrace(res.Trace, 1e-2); err != nil {
					t.Errorf("trace: %v", err)
				}
			case hard:
				if res.Verdict == icpic3.Unsafe {
					t.Fatalf("hard-safe model reported unsafe")
				}
			default:
				if res.Verdict != icpic3.Safe {
					t.Fatalf("verdict = %v (%s), want safe", res.Verdict, res.Note)
				}
			}
		})
	}
}
