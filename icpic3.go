// Package icpic3 is the public façade of the ICP+IC3 model checker: a
// reproduction of "ICP and IC3" (Scheibler, Winterer, Seufert, Teige,
// Scholl, Becker — DATE 2021).  It verifies safety properties of
// transition systems with non-linear arithmetic by integrating interval
// constraint propagation (an iSAT3-style CDCL(ICP) solver) into the
// IC3/PDR algorithm, alongside BMC and k-induction baselines and a
// classical Boolean IC3 over and-inverter graphs.
//
// Quickstart:
//
//	sys, err := icpic3.ParseSystem(`
//	system decay
//	var x : real [0, 10]
//	init x >= 0 and x <= 6
//	trans x' = x / 2
//	prop x <= 8
//	`)
//	res := icpic3.CheckIC3(sys, icpic3.IC3Options{})
//	fmt.Println(res.Verdict) // safe
//
// Verdicts are sound: Safe comes with an inductive invariant over interval
// boxes, Unsafe with a concretely validated counterexample trace, and
// everything uncertain (including ε-spurious candidates) is Unknown.
package icpic3

import (
	"icpic3/internal/aig"
	"icpic3/internal/bmc"
	"icpic3/internal/engine"
	"icpic3/internal/ic3bool"
	"icpic3/internal/ic3icp"
	"icpic3/internal/icp"
	"icpic3/internal/kind"
	"icpic3/internal/portfolio"
	"icpic3/internal/ts"
)

// icpOptions returns the default solver configuration used by the façade.
func icpOptions() icp.Options { return icp.Options{} }

// System is a symbolic transition system (see package-internal ts).
type System = ts.System

// State is a concrete valuation of the state variables.
type State = ts.State

// NewSystem returns an empty transition system to be populated through
// AddReal/AddInt/AddBool and ParseInit/ParseTrans/ParseProp.
func NewSystem(name string) *System { return ts.New(name) }

// ParseSystem reads a system from the model-file syntax (see ts.Parse).
func ParseSystem(src string) (*System, error) { return ts.Parse(src) }

// Simulator steps a system concretely through ICP point queries.
type Simulator = ts.Simulator

// NewSimulator builds a concrete simulator for the system (eps 0 = 1e-9).
func NewSimulator(sys *System, eps float64) *Simulator {
	return ts.NewSimulator(sys, eps)
}

// Witness is a machine-readable verification certificate.
type Witness = engine.Witness

// NewWitness assembles a witness from a result; invariant strings may be
// nil (they come from IC3Info.Invariant for Safe verdicts).
func NewWitness(systemName string, res Result, invariant []string) Witness {
	return engine.NewWitness(systemName, res, invariant)
}

// Verdict is the outcome of a verification run.
type Verdict = engine.Verdict

// Verdict values.
const (
	// Safe: the property holds; an inductive invariant was found.
	Safe = engine.Safe
	// Unsafe: a validated counterexample trace exists.
	Unsafe = engine.Unsafe
	// Unknown: undecided within the budget.
	Unknown = engine.Unknown
)

// Result is the uniform verification outcome.
type Result = engine.Result

// Budget bounds a verification run by wall-clock time.
type Budget = engine.Budget

// IC3Options configures the ICP-augmented IC3 engine.
type IC3Options = ic3icp.Options

// IC3Info carries IC3-specific output (invariant cubes, frame count).
type IC3Info = ic3icp.Info

// GenMode selects the IC3 generalization strategy (ablation knob).
type GenMode = ic3icp.GenMode

// Generalization modes.
const (
	// GenNone blocks unmodified cubes.
	GenNone = ic3icp.GenNone
	// GenCore drops literals via UNSAT cores.
	GenCore = ic3icp.GenCore
	// GenCoreWiden additionally widens bounds outward (default).
	GenCoreWiden = ic3icp.GenCoreWiden
)

// CheckIC3 model-checks AG Prop with the ICP-augmented IC3 engine — the
// paper's contribution.
func CheckIC3(sys *System, opts IC3Options) Result { return ic3icp.Check(sys, opts) }

// CheckIC3Full is CheckIC3 returning the invariant and frame detail.
func CheckIC3Full(sys *System, opts IC3Options) (Result, *IC3Info) {
	return ic3icp.CheckFull(sys, opts)
}

// InvariantCube is one blocked box of an IC3 invariant.
type InvariantCube = ic3icp.Cube

// VerifyInvariant independently certifies that Prop plus the negated cubes
// form a safe inductive invariant of the system (sound UNSAT checks with
// fresh solvers).  A nil return is a proof certificate.
func VerifyInvariant(sys *System, invariant []InvariantCube) error {
	return ic3icp.VerifyInvariant(sys, invariant, icpOptions())
}

// BMCOptions configures the bounded model checking baseline.
type BMCOptions = bmc.Options

// CheckBMC searches for counterexamples by unrolling the transition
// relation (finds bugs, never proves safety).
func CheckBMC(sys *System, opts BMCOptions) Result { return bmc.Check(sys, opts) }

// KInductionOptions configures the k-induction baseline.
type KInductionOptions = kind.Options

// CheckKInduction proves k-inductive properties and finds shallow bugs.
func CheckKInduction(sys *System, opts KInductionOptions) Result {
	return kind.Check(sys, opts)
}

// PortfolioOptions configures the parallel engine portfolio.
type PortfolioOptions = portfolio.Options

// CheckPortfolio runs IC3, BMC and k-induction concurrently, returning the
// first decisive verdict and cancelling the rest.
func CheckPortfolio(sys *System, opts PortfolioOptions) Result {
	return portfolio.Check(sys, opts)
}

// Circuit is a sequential and-inverter graph for the Boolean engines.
type Circuit = aig.Circuit

// CircuitLit is a circuit literal (node with optional inversion).
type CircuitLit = aig.Lit

// Circuit constants.
const (
	// CircuitFalse is the constant-false literal.
	CircuitFalse = aig.False
	// CircuitTrue is the constant-true literal.
	CircuitTrue = aig.True
)

// CircuitVerdict is the outcome of a Boolean engine run.
type CircuitVerdict = ic3bool.Verdict

// Boolean verdicts.
const (
	// CircuitSafe: an inductive invariant exists.
	CircuitSafe = ic3bool.Safe
	// CircuitUnsafe: a counterexample trace exists.
	CircuitUnsafe = ic3bool.Unsafe
	// CircuitUnknown: budget exhausted.
	CircuitUnknown = ic3bool.Unknown
)

// NewCircuit returns an empty circuit.
func NewCircuit() *Circuit { return aig.New() }

// CircuitOptions configures the Boolean IC3 engine.
type CircuitOptions = ic3bool.Options

// CircuitResult is the outcome of a Boolean engine run.
type CircuitResult = ic3bool.Result

// CheckCircuit model-checks a circuit's bad output with Boolean IC3/PDR.
func CheckCircuit(c *Circuit, opts CircuitOptions) CircuitResult {
	return ic3bool.Check(c, opts)
}

// CheckCircuitBMC bounded-model-checks a circuit with the SAT solver.
func CheckCircuitBMC(c *Circuit, maxDepth int) CircuitResult {
	return ic3bool.BMC(c, maxDepth)
}
