// Benchmarks regenerating every table and figure of the evaluation
// (DESIGN.md §5, EXPERIMENTS.md).  Each benchmark performs one full
// regeneration per iteration and reports domain metrics (instances solved,
// cubes learned) alongside the standard time/op.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
package icpic3_test

import (
	"io"
	"testing"
	"time"

	"icpic3/internal/benchmarks"
	"icpic3/internal/engine"
	"icpic3/internal/harness"
	"icpic3/internal/ic3icp"
)

// benchBudget is the per-run engine budget inside benchmarks: small enough
// to keep a full `go test -bench=.` session laptop-sized, large enough
// that the qualitative shape (who solves what) is stable.
const benchBudget = 10 * time.Second

// benchSuite returns the benchmark grid used by the table benches
// (2 instances per family and polarity = 24 instances).
func benchSuite() []benchmarks.Instance {
	s, err := benchmarks.Suite(2)
	if err != nil {
		panic(err)
	}
	return s
}

// BenchmarkTable1SuiteStats regenerates Table I (suite statistics).
func BenchmarkTable1SuiteStats(b *testing.B) {
	suite := benchSuite()
	for i := 0; i < b.N; i++ {
		harness.Table1(io.Discard, suite)
	}
}

// BenchmarkTable2EngineComparison regenerates Table II: all three engines
// over the full suite.
func BenchmarkTable2EngineComparison(b *testing.B) {
	suite := benchSuite()
	engines := harness.Engines()
	names := harness.EngineNames()
	var solved, wrong int64
	for i := 0; i < b.N; i++ {
		records := harness.RunSuite(suite, engines, names, benchBudget)
		for _, s := range harness.Summarize(records, names) {
			solved += int64(s.SolvedSafe + s.SolvedUnsaf)
			wrong += int64(s.Wrong)
		}
	}
	b.ReportMetric(float64(solved)/float64(b.N), "solved/op")
	b.ReportMetric(float64(wrong)/float64(b.N), "wrong/op")
}

// BenchmarkTable3Generalization regenerates Table III: the IC3-ICP
// generalization ablation over the safe instances.
func BenchmarkTable3Generalization(b *testing.B) {
	var safe []benchmarks.Instance
	for _, in := range benchSuite() {
		if in.Expected == engine.Safe && !in.Hard {
			safe = append(safe, in)
		}
	}
	var solved int64
	for i := 0; i < b.N; i++ {
		ab := harness.RunAblation(safe, benchBudget)
		for _, recs := range ab {
			for _, r := range recs {
				if r.Correct() {
					solved++
				}
			}
		}
	}
	b.ReportMetric(float64(solved)/float64(b.N), "solved/op")
}

// BenchmarkTable4BooleanIC3 regenerates Table IV: Boolean IC3 vs SAT BMC
// on the circuit suite.
func BenchmarkTable4BooleanIC3(b *testing.B) {
	circuits := benchmarks.Circuits()
	for i := 0; i < b.N; i++ {
		records := harness.RunCircuits(circuits, 128)
		for _, r := range records {
			if r.Engine == "ic3-bool" && r.Verdict.String() != r.Expected.String() {
				b.Fatalf("wrong verdict on %s", r.Instance)
			}
		}
	}
}

// BenchmarkFig1Cactus regenerates the cactus-plot series (Fig. 1).
func BenchmarkFig1Cactus(b *testing.B) {
	suite := benchSuite()
	engines := harness.Engines()
	names := harness.EngineNames()
	for i := 0; i < b.N; i++ {
		records := harness.RunSuite(suite, engines, names, benchBudget)
		series := harness.CactusSeries(records, names)
		if len(series) != len(names) {
			b.Fatal("missing series")
		}
	}
}

// BenchmarkFig2Scatter regenerates the IC3-vs-BMC scatter points (Fig. 2).
func BenchmarkFig2Scatter(b *testing.B) {
	suite := benchSuite()
	engines := harness.Engines()
	names := []string{"ic3-icp", "bmc-icp"}
	for i := 0; i < b.N; i++ {
		records := harness.RunSuite(suite, engines, names, benchBudget)
		pts := harness.ScatterSeries(records, "ic3-icp", "bmc-icp", benchBudget.Seconds())
		if len(pts) != len(suite) {
			b.Fatalf("scatter points = %d", len(pts))
		}
	}
}

// BenchmarkFig3Epsilon regenerates the precision sweep (Fig. 3).
func BenchmarkFig3Epsilon(b *testing.B) {
	var small []benchmarks.Instance
	for _, in := range benchSuite() {
		if (in.Family == "poly" || in.Family == "logistic") && in.Expected == engine.Safe {
			small = append(small, in)
		}
	}
	epss := []float64{1e-2, 1e-4, 1e-6}
	for i := 0; i < b.N; i++ {
		pts := harness.EpsSweep(small, epss, benchBudget)
		if len(pts) != len(epss) {
			b.Fatal("missing sweep points")
		}
	}
}

// BenchmarkFig4Frames regenerates the frame-growth figure (Fig. 4).
func BenchmarkFig4Frames(b *testing.B) {
	var vehicles []benchmarks.Instance
	for _, in := range benchSuite() {
		if in.Family == "vehicle" {
			vehicles = append(vehicles, in)
		}
	}
	var cubes int64
	for i := 0; i < b.N; i++ {
		pts := harness.FrameGrowth(vehicles, benchBudget)
		for _, p := range pts {
			cubes += p.Cubes
		}
	}
	b.ReportMetric(float64(cubes)/float64(b.N), "cubes/op")
}

// BenchmarkSolverICP measures raw CDCL(ICP) solving on one representative
// nonlinear query (the logistic safe instance's transition step), isolating
// solver cost from IC3 orchestration.
func BenchmarkSolverICP(b *testing.B) {
	in := benchmarks.Must(benchmarks.Logistic(true, 0))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := ic3icp.Check(in.Sys, ic3icp.Options{Budget: engine.Budget{Timeout: benchBudget}})
		if res.Verdict != engine.Safe {
			b.Fatalf("verdict = %v", res.Verdict)
		}
	}
}

// TestSolverICPAllocs pins the allocation budget of the representative
// CDCL(ICP) run that BenchmarkSolverICP times.  The watched-bound core
// landed at ~1590 allocs/op; the triggered-pushing rework added the
// durable-op log, per-cube trigger records, and the UNSAT-core hit
// table (~1760 allocs/op, in exchange for cutting queries ~3x on the
// consecution-bound suite); the assumption-aware query core added the
// consecution memo's table and per-store cube/core copies (~1830
// allocs/op, in exchange for short-circuiting repeated UNSAT queries
// and ~26% fewer solver queries suite-wide).  The guard sits a small
// margin above so a hot-path allocation regression fails loudly
// without flaking on minor drift below it.
func TestSolverICPAllocs(t *testing.T) {
	in := benchmarks.Must(benchmarks.Logistic(true, 0))
	allocs := testing.AllocsPerRun(5, func() {
		res := ic3icp.Check(in.Sys, ic3icp.Options{Budget: engine.Budget{Timeout: benchBudget}})
		if res.Verdict != engine.Safe {
			t.Fatalf("verdict = %v", res.Verdict)
		}
	})
	const budget = 1950
	if allocs > budget {
		t.Errorf("solver ICP run allocates %.0f/op, budget %d", allocs, budget)
	}
}

// BenchmarkIC3BoolSafeCounter measures the Boolean PDR baseline on a safe
// counter (invariant discovery path).
func BenchmarkIC3BoolSafeCounter(b *testing.B) {
	circuits := benchmarks.Circuits()
	var safecounter benchmarks.CircuitInstance
	for _, ci := range circuits {
		if ci.Name == "safecounter8" {
			safecounter = ci
		}
	}
	records := 0
	for i := 0; i < b.N; i++ {
		res := harness.RunCircuits([]benchmarks.CircuitInstance{safecounter}, 64)
		records += len(res)
	}
	if records == 0 {
		b.Fatal("no records")
	}
}
