package icpic3_test

import (
	"fmt"
	"time"

	"icpic3"
)

// ExampleCheckIC3 proves a non-linear safety property and prints the
// discovered interval invariant.
func ExampleCheckIC3() {
	sys, _ := icpic3.ParseSystem(`
system decay
var x : real [0, 10]
init x >= 0 and x <= 6
trans x' = x / 2
prop x <= 8
`)
	res, info := icpic3.CheckIC3Full(sys, icpic3.IC3Options{
		Budget: icpic3.Budget{Timeout: 30 * time.Second},
	})
	fmt.Println(res.Verdict)
	fmt.Println("invariant cubes:", len(info.Invariant))
	// independently certify the proof
	fmt.Println("certified:", icpic3.VerifyInvariant(sys, info.Invariant) == nil)
	// Output:
	// safe
	// invariant cubes: 1
	// certified: true
}

// ExampleCheckBMC finds and validates a concrete counterexample.
func ExampleCheckBMC() {
	sys, _ := icpic3.ParseSystem(`
system counter
var x : real [0, 100]
init x <= 0
trans x' = x + 1
prop x <= 3
`)
	res := icpic3.CheckBMC(sys, icpic3.BMCOptions{MaxDepth: 16})
	fmt.Println(res.Verdict, "at depth", res.Depth)
	for i, st := range res.Trace {
		fmt.Printf("step %d: x=%.0f\n", i, st["x"])
	}
	// Output:
	// unsafe at depth 4
	// step 0: x=0
	// step 1: x=1
	// step 2: x=2
	// step 3: x=3
	// step 4: x=4
}

// ExampleCheckCircuit runs Boolean IC3/PDR on a hand-built circuit.
func ExampleCheckCircuit() {
	c := icpic3.NewCircuit()
	a := c.AddLatch(false)
	b := c.AddLatch(false)
	c.SetNext(a, a.Not())     // a toggles every cycle
	c.SetNext(b, c.And(a, b)) // b can never rise
	c.SetBad(b)
	res := icpic3.CheckCircuit(c, icpic3.CircuitOptions{})
	fmt.Println(res.Verdict)
	// Output:
	// safe
}

// ExampleNewSimulator steps a system concretely.
func ExampleNewSimulator() {
	sys, _ := icpic3.ParseSystem(`
system doubling
var x : real [0, 100]
init x = 1
trans x' = 2 * x
prop x <= 100
`)
	sim := icpic3.NewSimulator(sys, 0)
	trace := sim.Run(icpic3.State{"x": 1}, 4)
	for _, st := range trace {
		fmt.Printf("%.0f ", st["x"])
	}
	// Output:
	// 1 2 4 8 16
}
