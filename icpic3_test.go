package icpic3_test

import (
	"testing"
	"time"

	"icpic3"
)

func TestFacadeSafe(t *testing.T) {
	sys, err := icpic3.ParseSystem(`
system facade
var x : real [0, 10]
init x >= 0 and x <= 6
trans x' = x / 2
prop x <= 8
`)
	if err != nil {
		t.Fatal(err)
	}
	budget := icpic3.Budget{Timeout: 30 * time.Second}

	res, info := icpic3.CheckIC3Full(sys, icpic3.IC3Options{Budget: budget})
	if res.Verdict != icpic3.Safe {
		t.Fatalf("ic3: %v (%s)", res.Verdict, res.Note)
	}
	if len(info.Invariant) == 0 {
		t.Error("no invariant reported")
	}
	if r := icpic3.CheckKInduction(sys, icpic3.KInductionOptions{Budget: budget}); r.Verdict != icpic3.Safe {
		t.Errorf("kind: %v", r.Verdict)
	}
	if r := icpic3.CheckBMC(sys, icpic3.BMCOptions{MaxDepth: 10, Budget: budget}); r.Verdict != icpic3.Unknown {
		t.Errorf("bmc on safe system: %v", r.Verdict)
	}
}

func TestFacadeUnsafe(t *testing.T) {
	sys, err := icpic3.ParseSystem(`
system facadebad
var x : real [0, 100]
init x >= 1 and x <= 1
trans x' = 2 * x
prop x <= 30
`)
	if err != nil {
		t.Fatal(err)
	}
	budget := icpic3.Budget{Timeout: 30 * time.Second}
	res := icpic3.CheckIC3(sys, icpic3.IC3Options{Budget: budget})
	if res.Verdict != icpic3.Unsafe {
		t.Fatalf("ic3: %v (%s)", res.Verdict, res.Note)
	}
	if err := sys.ValidateTrace(res.Trace, 1e-2); err != nil {
		t.Errorf("trace: %v", err)
	}
}

func TestFacadeBuilderAPI(t *testing.T) {
	sys := icpic3.NewSystem("built")
	if err := sys.AddReal("x", 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := sys.ParseInit("x <= 1"); err != nil {
		t.Fatal(err)
	}
	if err := sys.ParseTrans("x' = x"); err != nil {
		t.Fatal(err)
	}
	if err := sys.ParseProp("x <= 5"); err != nil {
		t.Fatal(err)
	}
	res := icpic3.CheckIC3(sys, icpic3.IC3Options{})
	if res.Verdict != icpic3.Safe {
		t.Fatalf("verdict = %v", res.Verdict)
	}
}

func TestFacadeCircuit(t *testing.T) {
	c := icpic3.NewCircuit()
	a := c.AddLatch(false)
	b := c.AddLatch(false)
	c.SetNext(a, a.Not())     // a toggles
	c.SetNext(b, c.And(a, b)) // b stays low
	c.SetBad(b)
	res := icpic3.CheckCircuit(c, icpic3.CircuitOptions{})
	if res.Verdict != icpic3.CircuitSafe {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	bres := icpic3.CheckCircuitBMC(c, 16)
	if bres.Verdict != icpic3.CircuitUnknown {
		t.Fatalf("bmc verdict = %v", bres.Verdict)
	}
	if icpic3.CircuitTrue != icpic3.CircuitFalse.Not() {
		t.Error("circuit constants")
	}
}

func TestFacadeGenModes(t *testing.T) {
	if icpic3.GenNone.String() != "none" || icpic3.GenCoreWiden.String() != "core+widen" {
		t.Error("gen mode aliases")
	}
	_ = icpic3.GenCore
}
